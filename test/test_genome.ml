(* Tests for the synthetic comparative-genomics substrate: genome
   generation, evolutionary operators with coordinate tracking,
   fragmentation, instance construction, and ground-truth metrics. *)

open Fsa_seq
open Fsa_genome

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let qtest t = QCheck_alcotest.to_alcotest ~verbose:false t

let ancestor seed =
  Genome.ancestral (Fsa_util.Rng.create seed) ~regions:8 ~region_len:30 ~spacer_len:20

(* ------------------------------------------------------------------ *)
(* Genome                                                               *)

let test_ancestral_valid_qcheck =
  QCheck.Test.make ~name:"ancestral genomes validate" ~count:50
    QCheck.(int_bound 100_000)
    (fun seed ->
      let g = ancestor seed in
      Result.is_ok (Genome.validate g)
      && List.length g.Genome.regions = 8
      && Genome.sorted_region_ids g = [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let test_region_dna_length () =
  let g = ancestor 1 in
  List.iter
    (fun r -> check_int "region dna length" 30 (Dna.length (Genome.region_dna g r)))
    g.Genome.regions

let test_find_region () =
  let g = ancestor 2 in
  check_bool "found" true (Genome.find_region g 3 <> None);
  check_bool "absent" true (Genome.find_region g 99 = None)

(* ------------------------------------------------------------------ *)
(* Evolution                                                            *)

let test_point_mutations_keep_coordinates () =
  let g = ancestor 3 in
  let g' = Evolution.point_mutations (Fsa_util.Rng.create 0) ~rate:0.1 g in
  check_int "genome length unchanged" (Genome.length g) (Genome.length g');
  check_bool "regions unchanged" true (g.Genome.regions = g'.Genome.regions);
  check_bool "dna changed" false (Dna.equal g.Genome.dna g'.Genome.dna)

let test_invert_flips_content_and_strand () =
  let g = ancestor 4 in
  let r = List.nth g.Genome.regions 2 in
  let at = r.Genome.pos - 3 and len = r.Genome.len + 6 in
  let g' = Evolution.invert (Fsa_util.Rng.create 0) ~at ~len g in
  check_bool "valid after inversion" true (Result.is_ok (Genome.validate g'));
  (match Genome.find_region g' r.Genome.id with
  | None -> Alcotest.fail "region inside the segment must survive"
  | Some r' ->
      check_bool "strand flipped" true r'.Genome.reversed;
      (* its bases, reverse-complemented back, equal the original copy *)
      check_bool "content preserved" true
        (Dna.equal
           (Dna.reverse_complement (Genome.region_dna g' r'))
           (Genome.region_dna g r)));
  check_int "genome length unchanged" (Genome.length g) (Genome.length g')

let test_invert_drops_straddlers () =
  let g = ancestor 5 in
  let r = List.nth g.Genome.regions 2 in
  (* Cut through the middle of the region. *)
  let at = r.Genome.pos + (r.Genome.len / 2) in
  let g' = Evolution.invert (Fsa_util.Rng.create 0) ~at ~len:40 g in
  check_bool "straddler dropped" true (Genome.find_region g' r.Genome.id = None);
  check_bool "still valid" true (Result.is_ok (Genome.validate g'))

let test_invert_involution () =
  let g = ancestor 6 in
  let g' = Evolution.invert (Fsa_util.Rng.create 0) ~at:50 ~len:80 g in
  let g'' = Evolution.invert (Fsa_util.Rng.create 0) ~at:50 ~len:80 g' in
  check_bool "dna restored" true (Dna.equal g.Genome.dna g''.Genome.dna)

let test_translocate_moves_region () =
  let g = ancestor 7 in
  let r = List.hd g.Genome.regions in
  let from_ = r.Genome.pos - 1 and len = r.Genome.len + 2 in
  let dest = Genome.length g - len - 5 in
  let g' = Evolution.translocate (Fsa_util.Rng.create 0) ~from_ ~len ~to_:dest g in
  check_bool "valid" true (Result.is_ok (Genome.validate g'));
  (match Genome.find_region g' r.Genome.id with
  | None -> Alcotest.fail "moved region must survive"
  | Some r' ->
      check_bool "moved late" true (r'.Genome.pos > r.Genome.pos);
      check_bool "content preserved" true
        (Dna.equal (Genome.region_dna g' r') (Genome.region_dna g r)));
  check_int "length unchanged" (Genome.length g) (Genome.length g')

let test_random_ops_keep_validity_qcheck =
  QCheck.Test.make ~name:"random rearrangements keep genomes valid" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Fsa_util.Rng.create seed in
      let g = ancestor seed in
      let g = Evolution.random_inversions rng ~count:3 ~mean_len:60 g in
      let g = Evolution.random_translocations rng ~count:2 ~mean_len:60 g in
      Result.is_ok (Genome.validate g) && Genome.length g = Genome.length (ancestor seed))

let test_diverge_pipeline () =
  let rng = Fsa_util.Rng.create 8 in
  let g = ancestor 8 in
  let g' =
    Evolution.diverge rng ~substitution_rate:0.05 ~inversions:2 ~translocations:1
      ~rearrangement_len:60 g
  in
  check_bool "valid" true (Result.is_ok (Genome.validate g'));
  check_bool "some regions survive" true (g'.Genome.regions <> [])

(* ------------------------------------------------------------------ *)
(* Fragmentation                                                        *)

let test_fragment_covers_genome_qcheck =
  QCheck.Test.make ~name:"contigs partition the genome" ~count:40
    QCheck.(pair (int_bound 100_000) (int_range 1 6))
    (fun (seed, pieces) ->
      let g = ancestor seed in
      let rng = Fsa_util.Rng.create seed in
      let contigs =
        Fragmentation.fragment rng ~pieces ~shuffle:false ~random_strand:false
          ~name_prefix:"c" g
      in
      List.length contigs = pieces
      && List.fold_left (fun acc c -> acc + Dna.length c.Fragmentation.dna) 0 contigs
         = Genome.length g)

let test_fragment_truth_tracks_content () =
  let g = ancestor 9 in
  let rng = Fsa_util.Rng.create 9 in
  let contigs = Fragmentation.fragment rng ~pieces:4 ~name_prefix:"c" g in
  List.iter
    (fun c ->
      (* Recover the original slice from ground truth and compare. *)
      let n = Dna.length c.Fragmentation.dna in
      let original = Dna.sub g.Genome.dna ~pos:c.Fragmentation.true_offset ~len:n in
      let restored =
        if c.Fragmentation.true_reversed then Dna.reverse_complement c.Fragmentation.dna
        else c.Fragmentation.dna
      in
      check_bool "truth restores the slice" true (Dna.equal original restored))
    contigs

let test_fragment_region_local_coords () =
  let g = ancestor 10 in
  let rng = Fsa_util.Rng.create 10 in
  let contigs = Fragmentation.fragment rng ~pieces:3 ~name_prefix:"c" g in
  List.iter
    (fun c ->
      List.iter
        (fun (r : Genome.region) ->
          check_bool "in contig bounds" true
            (r.Genome.pos >= 0 && r.Genome.pos + r.Genome.len <= Dna.length c.Fragmentation.dna))
        c.Fragmentation.regions)
    contigs

let test_fragment_no_partial_regions_qcheck =
  QCheck.Test.make ~name:"regions are never split across contigs" ~count:40
    QCheck.(pair (int_bound 100_000) (int_range 2 8))
    (fun (seed, pieces) ->
      let g = ancestor seed in
      let rng = Fsa_util.Rng.create seed in
      let contigs =
        Fragmentation.fragment rng ~pieces ~shuffle:false ~random_strand:false
          ~name_prefix:"c" g
      in
      (* Each surviving region appears exactly once, whole. *)
      let survivors = List.concat_map Fragmentation.contig_region_ids contigs in
      List.length survivors = List.length (List.sort_uniq compare survivors)
      && List.length survivors <= 8)

(* ------------------------------------------------------------------ *)
(* Pipeline + metrics                                                   *)

let test_oracle_instance_regions_shared () =
  let rng = Fsa_util.Rng.create 11 in
  let p = { Pipeline.default_params with inversions = 0; translocations = 0 } in
  let h, m = Pipeline.generate rng p in
  let built = Pipeline.oracle_instance ~h ~m in
  let inst = built.Pipeline.instance in
  check_bool "sigma has entries" true (Fsa_seq.Scoring.entries inst.Fsa_csr.Instance.sigma <> []);
  check_int "contig maps align with instance"
    (Fsa_csr.Instance.fragment_count inst Fsa_csr.Species.H)
    (Array.length built.Pipeline.h_contigs)

let test_oracle_perfect_recovery () =
  (* No rearrangements: a correct solver must recover order and orientation
     perfectly (up to island mirroring). *)
  let rng = Fsa_util.Rng.create 12 in
  let p = { Pipeline.default_params with inversions = 0; translocations = 0 } in
  let _, _, report =
    Pipeline.run rng ~mode:`Oracle p ~solver:Fsa_csr.Csr_improve.solve_best
  in
  check_float "perfect order accuracy" 1.0 (Metrics.order_accuracy report);
  check_bool "pairs were actually scored" true (report.Metrics.h_pairs + report.Metrics.m_pairs > 0)

let test_oracle_survives_rearrangements_qcheck =
  QCheck.Test.make ~name:"oracle pipeline always yields consistent solutions"
    ~count:10
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Fsa_util.Rng.create seed in
      let built, sol, report =
        Pipeline.run rng ~mode:`Oracle Pipeline.default_params
          ~solver:Fsa_csr.Csr_improve.solve_best
      in
      ignore built;
      Result.is_ok (Fsa_csr.Solution.validate sol)
      && Metrics.order_accuracy report >= 0.0
      && Metrics.coverage report <= 1.0)

let test_discovery_instance_finds_regions () =
  let rng = Fsa_util.Rng.create 13 in
  let p = { Pipeline.default_params with substitution_rate = 0.02 } in
  let h, m = Pipeline.generate rng p in
  let built = Pipeline.discovery_instance ~h ~m () in
  let inst = built.Pipeline.instance in
  check_bool "h fragments discovered" true
    (Fsa_csr.Instance.fragment_count inst Fsa_csr.Species.H > 0);
  check_bool "sigma populated" true
    (Fsa_seq.Scoring.entries inst.Fsa_csr.Instance.sigma <> [])

let test_discovery_recovery_reasonable () =
  let rng = Fsa_util.Rng.create 14 in
  let p = { Pipeline.default_params with inversions = 0; translocations = 0 } in
  let _, _, report =
    Pipeline.run rng ~mode:`Discovery p ~solver:Fsa_csr.Csr_improve.solve_best
  in
  check_bool "good accuracy without rearrangements" true
    (Metrics.order_accuracy report >= 0.8)

(* Golden equivalence: the [`Per_anchor] engine must keep producing the
   exact instance text the pre-chaining builder produced (captured from the
   historical implementation on seeds 1–3).  This pins the refactored Seed
   hot path, the sweep-based domination filter, and the fanned-out anchor
   collection to the old sequential semantics, byte for byte. *)
let per_anchor_golden =
  [
    ( 1,
      "H h3: h0_0\n\
       H h2: h1_0\n\
       H h1: h2_0 h2_1\n\
       M m6: m2_0 m2_1\n\
       M m7: m3_0 m3_1\n\
       M m2: m4_0\n\
       M m5: m5_0\n\
       M m3: m6_0\n\
       S h2_0 m6_0' 112\n\
       S h2_0 m4_0 265\n\
       S h2_1 m5_0 213\n\
       S h1_0 m5_0' 58\n\
       S h1_0 m3_0' 84\n\
       S h1_0 m2_1 51\n\
       S h1_0 m2_1' 172\n\
       S h1_0 m2_0' 254\n\
       S h0_0 m3_1' 52\n" );
    ( 2,
      "H h3: h0_0\n\
       H h2: h1_0 h1_1\n\
       H h1: h2_0\n\
       M m7: m0_0\n\
       M m5: m1_0\n\
       M m1: m2_0\n\
       M m6: m3_0\n\
       M m4: m5_0\n\
       M m2: m6_0\n\
       S h1_1 m6_0 31\n\
       S h1_1 m2_0 365\n\
       S h1_0 m5_0 336\n\
       S h1_0 m3_0' 31\n\
       S h1_0 m0_0' 30\n\
       S h0_0 m5_0' 151\n\
       S h0_0 m1_0 31\n\
       S h0_0 m0_0 107\n\
       S h2_0 m2_0 91\n\
       S h2_0 m2_0' 234\n" );
    ( 3,
      "H h3: h1_0 h1_1 h1_2\n\
       H h2: h2_0\n\
       M m2: m0_0\n\
       M m1: m1_0\n\
       M m3: m2_0\n\
       M m4: m4_0\n\
       M m5: m5_0\n\
       M m7: m6_0\n\
       S h1_0 m6_0 53\n\
       S h1_0 m6_0' 452\n\
       S h1_1 m5_0' 77\n\
       S h1_1 m4_0' 74\n\
       S h1_1 m2_0' 64\n\
       S h1_1 m0_0 159\n\
       S h1_1 m0_0' 48\n\
       S h2_0 m1_0' 106\n\
       S h1_2 m1_0' 94\n" );
  ]

let test_per_anchor_engine_golden () =
  List.iter
    (fun (seed, expected) ->
      let rng = Fsa_util.Rng.create seed in
      let h, m = Pipeline.generate rng Pipeline.default_params in
      let built = Pipeline.discovery_instance ~engine:`Per_anchor ~h ~m () in
      Alcotest.(check string)
        (Printf.sprintf "seed %d instance text" seed)
        expected
        (Fsa_csr.Instance.to_text built.Pipeline.instance))
    per_anchor_golden

let test_chained_engine_builds () =
  let rng = Fsa_util.Rng.create 13 in
  let h, m = Pipeline.generate rng Pipeline.default_params in
  let reg = Fsa_obs.Registry.create () in
  let built =
    Fsa_obs.Runtime.with_observation ~registry:reg (fun () ->
        Pipeline.discovery_instance ~engine:`Chained ~h ~m ())
  in
  let inst = built.Pipeline.instance in
  check_bool "h fragments discovered" true
    (Fsa_csr.Instance.fragment_count inst Fsa_csr.Species.H > 0);
  check_bool "sigma populated" true
    (Fsa_seq.Scoring.entries inst.Fsa_csr.Instance.sigma <> []);
  let c name =
    match Fsa_obs.Registry.counter_value reg name with Some v -> v | None -> 0.0
  in
  check_bool "chains were built" true (c "chain.chains_built" > 0.0);
  check_bool "anchors were chained" true (c "chain.anchors_chained" > 0.0)

let test_engines_agree_on_structure () =
  (* The three engines see the same anchors, so on an easy instance (no
     rearrangements) they should discover comparable structure and a solver
     should recover accurate order from any of them. *)
  let p = { Pipeline.default_params with inversions = 0; translocations = 0 } in
  List.iter
    (fun engine ->
      let rng = Fsa_util.Rng.create 14 in
      let h, m = Pipeline.generate rng p in
      let built = Pipeline.discovery_instance ~engine ~h ~m () in
      let sol = Fsa_csr.Csr_improve.solve_best built.Pipeline.instance in
      let report = Metrics.evaluate built sol in
      check_bool "good accuracy without rearrangements" true
        (Metrics.order_accuracy report >= 0.8))
    [ `Chained; `Per_anchor; `Per_anchor_full ]

let test_metrics_counts () =
  let rng = Fsa_util.Rng.create 15 in
  let built, sol, report =
    Pipeline.run rng ~mode:`Oracle Pipeline.default_params
      ~solver:Fsa_csr.Csr_improve.solve_best
  in
  let inst = built.Pipeline.instance in
  let total =
    Fsa_csr.Instance.fragment_count inst Fsa_csr.Species.H
    + Fsa_csr.Instance.fragment_count inst Fsa_csr.Species.M
  in
  check_int "total fragments" total report.Metrics.total_fragments;
  check_bool "matched <= total" true (report.Metrics.matched_fragments <= total);
  check_bool "correct <= pairs" true
    (report.Metrics.h_correct <= report.Metrics.h_pairs
    && report.Metrics.m_correct <= report.Metrics.m_pairs);
  ignore sol

let test_empty_solver_vacuous_metrics () =
  let rng = Fsa_util.Rng.create 16 in
  let _, _, report =
    Pipeline.run rng ~mode:`Oracle Pipeline.default_params
      ~solver:(fun inst -> Fsa_csr.Solution.empty inst)
  in
  check_int "no islands" 0 report.Metrics.islands;
  check_float "vacuous accuracy" 1.0 (Metrics.order_accuracy report);
  check_float "zero coverage" 0.0 (Metrics.coverage report)

let () =
  Alcotest.run "fsa_genome"
    [
      ( "genome",
        [
          qtest test_ancestral_valid_qcheck;
          Alcotest.test_case "region dna" `Quick test_region_dna_length;
          Alcotest.test_case "find region" `Quick test_find_region;
        ] );
      ( "evolution",
        [
          Alcotest.test_case "point mutations" `Quick test_point_mutations_keep_coordinates;
          Alcotest.test_case "inversion flips" `Quick test_invert_flips_content_and_strand;
          Alcotest.test_case "inversion drops straddlers" `Quick test_invert_drops_straddlers;
          Alcotest.test_case "inversion involution" `Quick test_invert_involution;
          Alcotest.test_case "translocation" `Quick test_translocate_moves_region;
          qtest test_random_ops_keep_validity_qcheck;
          Alcotest.test_case "diverge" `Quick test_diverge_pipeline;
        ] );
      ( "fragmentation",
        [
          qtest test_fragment_covers_genome_qcheck;
          Alcotest.test_case "ground truth restores slices" `Quick test_fragment_truth_tracks_content;
          Alcotest.test_case "local coordinates" `Quick test_fragment_region_local_coords;
          qtest test_fragment_no_partial_regions_qcheck;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "oracle instance" `Quick test_oracle_instance_regions_shared;
          Alcotest.test_case "perfect recovery" `Quick test_oracle_perfect_recovery;
          qtest test_oracle_survives_rearrangements_qcheck;
          Alcotest.test_case "discovery instance" `Quick test_discovery_instance_finds_regions;
          Alcotest.test_case "discovery recovery" `Quick test_discovery_recovery_reasonable;
          Alcotest.test_case "per-anchor engine golden" `Quick test_per_anchor_engine_golden;
          Alcotest.test_case "chained engine builds" `Quick test_chained_engine_builds;
          Alcotest.test_case "engines agree on structure" `Quick test_engines_agree_on_structure;
          Alcotest.test_case "metrics counts" `Quick test_metrics_counts;
          Alcotest.test_case "empty solver" `Quick test_empty_solver_vacuous_metrics;
        ] );
    ]
