(* Tests for Fsa_intervals: interval algebra, weighted interval scheduling,
   the ISP and the two-phase algorithm (ratio-2 guarantee checked against
   the exact optimum on random instances). *)

open Fsa_intervals

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let qtest t = QCheck_alcotest.to_alcotest ~verbose:false t

let interval_gen =
  QCheck.(
    map (fun (a, b) -> Interval.make (min a b) (max a b)) (pair (int_bound 30) (int_bound 30)))

(* ------------------------------------------------------------------ *)
(* Interval                                                             *)

let test_interval_basics () =
  let i = Interval.make 2 5 in
  check_int "length" 4 (Interval.length i);
  check_bool "overlaps" true (Interval.overlaps i (Interval.make 5 9));
  check_bool "disjoint" true (Interval.disjoint i (Interval.make 6 9));
  check_bool "touches adjacent" true (Interval.touches i (Interval.make 6 9));
  check_bool "contains" true (Interval.contains i (Interval.make 3 4));
  check_bool "hull" true (Interval.equal (Interval.hull i (Interval.make 8 9)) (Interval.make 2 9));
  Alcotest.check_raises "inverted" (Invalid_argument "Interval.make: lo > hi")
    (fun () -> ignore (Interval.make 3 2))

let test_interval_intersect () =
  check_bool "some" true
    (Interval.intersect (Interval.make 0 5) (Interval.make 3 9) = Some (Interval.make 3 5));
  check_bool "none" true (Interval.intersect (Interval.make 0 2) (Interval.make 3 9) = None)

let test_interval_overlap_symmetric_qcheck =
  QCheck.Test.make ~name:"overlap is symmetric" ~count:300
    QCheck.(pair interval_gen interval_gen)
    (fun (a, b) -> Interval.overlaps a b = Interval.overlaps b a)

let test_interval_overlap_pointwise_qcheck =
  QCheck.Test.make ~name:"overlap agrees with pointwise test" ~count:300
    QCheck.(pair interval_gen interval_gen)
    (fun (a, b) ->
      let pointwise = ref false in
      for p = a.Interval.lo to a.Interval.hi do
        if p >= b.Interval.lo && p <= b.Interval.hi then pointwise := true
      done;
      Interval.overlaps a b = !pointwise)

(* ------------------------------------------------------------------ *)
(* Interval.Set                                                         *)

let test_set_add_merges () =
  let s = Interval.Set.of_list [ Interval.make 0 2; Interval.make 3 5 ] in
  check_int "touching inputs merge" 1 (Interval.Set.cardinal s);
  check_int "total length" 6 (Interval.Set.total_length s)

let test_set_add_disjoint () =
  let s = Interval.Set.of_list [ Interval.make 0 2; Interval.make 10 12 ] in
  check_int "two members" 2 (Interval.Set.cardinal s);
  check_bool "mem point" true (Interval.Set.mem_point s 11);
  check_bool "not mem" false (Interval.Set.mem_point s 5)

let test_set_remove () =
  let s = Interval.Set.of_list [ Interval.make 0 10 ] in
  let s = Interval.Set.remove s (Interval.make 3 5) in
  check_int "split into two" 2 (Interval.Set.cardinal s);
  check_int "length" 8 (Interval.Set.total_length s);
  check_bool "hole" false (Interval.Set.mem_point s 4)

let test_set_semantics_qcheck =
  (* Compare against a boolean-array model. *)
  let op_gen = QCheck.(pair bool interval_gen) in
  QCheck.Test.make ~name:"interval set tracks boolean-array model" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 15) op_gen)
    (fun ops ->
      let model = Array.make 32 false in
      let s =
        List.fold_left
          (fun s (add, iv) ->
            for p = iv.Interval.lo to min 31 iv.Interval.hi do
              model.(p) <- add
            done;
            if add then Interval.Set.add s iv else Interval.Set.remove s iv)
          Interval.Set.empty ops
      in
      let ok = ref true in
      for p = 0 to 31 do
        if Interval.Set.mem_point s p <> model.(p) then ok := false
      done;
      (* members must be sorted, disjoint and non-touching *)
      let rec well_formed = function
        | a :: (b :: _ as rest) ->
            (a.Interval.hi + 1 < b.Interval.lo) && well_formed rest
        | _ -> true
      in
      !ok && well_formed (Interval.Set.to_list s))

(* ------------------------------------------------------------------ *)
(* Wis                                                                  *)

let exhaustive_wis items =
  (* Reference: try all subsets. *)
  let arr = Array.of_list items in
  let n = Array.length arr in
  let best = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let chosen = ref [] in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then chosen := arr.(i) :: !chosen
    done;
    let rec disjoint = function
      | [] -> true
      | x :: rest ->
          List.for_all (fun y -> Interval.disjoint x.Wis.interval y.Wis.interval) rest
          && disjoint rest
    in
    if disjoint !chosen then begin
      let v = List.fold_left (fun acc x -> acc +. x.Wis.profit) 0.0 !chosen in
      if v > !best then best := v
    end
  done;
  !best

let wis_items_gen =
  QCheck.(
    list_of_size (Gen.int_range 0 10)
      (map
         (fun ((a, b), p) ->
           { Wis.interval = Interval.make (min a b) (max a b); profit = p })
         (pair (pair (int_bound 20) (int_bound 20)) (map (fun x -> Float.abs x) (float_range 0.0 10.0)))))

let test_wis_exact_qcheck =
  QCheck.Test.make ~name:"WIS DP equals exhaustive optimum" ~count:200 wis_items_gen
    (fun items ->
      let dp, sel = Wis.solve items in
      let brute = exhaustive_wis items in
      let rec disjoint = function
        | [] -> true
        | x :: rest ->
            List.for_all (fun y -> Interval.disjoint x.Wis.interval y.Wis.interval) rest
            && disjoint rest
      in
      Float.abs (dp -. brute) < 1e-9 && disjoint sel
      && Float.abs (List.fold_left (fun a x -> a +. x.Wis.profit) 0.0 sel -. dp) < 1e-9)

let test_wis_known () =
  let items =
    [
      { Wis.interval = Interval.make 0 3; profit = 3.0 };
      { Wis.interval = Interval.make 4 7; profit = 3.0 };
      { Wis.interval = Interval.make 2 5; profit = 5.0 };
    ]
  in
  let v, _ = Wis.solve items in
  check_float "two sides beat middle" 6.0 v

let test_wis_greedy_suboptimal () =
  let items =
    [
      { Wis.interval = Interval.make 0 3; profit = 3.0 };
      { Wis.interval = Interval.make 4 7; profit = 3.0 };
      { Wis.interval = Interval.make 2 5; profit = 5.0 };
    ]
  in
  let v, _ = Wis.greedy_by_profit items in
  check_float "greedy takes the middle" 5.0 v

(* ------------------------------------------------------------------ *)
(* Isp                                                                  *)

let isp_gen =
  QCheck.make
    ~print:(fun (seed, jobs, cpj) -> Printf.sprintf "seed=%d jobs=%d cpj=%d" seed jobs cpj)
    QCheck.Gen.(triple (int_bound 10_000) (int_range 1 5) (int_range 1 5))

let instance_of (seed, jobs, cpj) =
  let rng = Fsa_util.Rng.create seed in
  Isp.random_instance rng ~jobs ~candidates_per_job:cpj ~span:25 ~max_len:8
    ~max_profit:10.0

let exact_exn ?node_limit isp =
  match Isp.exact ?node_limit isp with
  | Ok r -> r
  | Error (`Node_limit n) -> Alcotest.failf "unexpected node limit (%d)" n
  | Error (`Budget_exceeded _) -> Alcotest.fail "unexpected budget trip" 

let test_isp_tpa_feasible_qcheck =
  QCheck.Test.make ~name:"TPA output is feasible" ~count:300 isp_gen (fun params ->
      let isp = instance_of params in
      let v, sel = Isp.tpa isp in
      Isp.is_feasible isp sel && Float.abs (v -. Isp.total_profit sel) < 1e-9)

let test_isp_exact_feasible_qcheck =
  QCheck.Test.make ~name:"exact output is feasible and beats TPA and greedy" ~count:200
    isp_gen (fun params ->
      let isp = instance_of params in
      let opt, sel = exact_exn isp in
      let tpa, _ = Isp.tpa isp in
      let gr, _ = Isp.greedy isp in
      Isp.is_feasible isp sel && opt >= tpa -. 1e-9 && opt >= gr -. 1e-9)

let test_isp_tpa_ratio2_qcheck =
  QCheck.Test.make ~name:"TPA is a 2-approximation" ~count:300 isp_gen (fun params ->
      let isp = instance_of params in
      let opt, _ = exact_exn isp in
      let tpa, _ = Isp.tpa isp in
      tpa *. 2.0 >= opt -. 1e-9)

let test_isp_upper_bound_qcheck =
  QCheck.Test.make ~name:"WIS relaxation bounds the optimum" ~count:200 isp_gen
    (fun params ->
      let isp = instance_of params in
      let opt, _ = exact_exn isp in
      Isp.upper_bound isp >= opt -. 1e-9)

let test_isp_tpa_tight_family () =
  (* The classic bait: one big interval worth w+eps versus two small ones
     worth w each, all same job? No - distinct jobs so both smalls count. *)
  let cands =
    [
      { Isp.job = 0; interval = Interval.make 0 9; profit = 10.0 };
      { Isp.job = 1; interval = Interval.make 0 4; profit = 6.0 };
      { Isp.job = 2; interval = Interval.make 5 9; profit = 6.0 };
    ]
  in
  let isp = Isp.create ~jobs:3 cands in
  let opt, _ = exact_exn isp in
  check_float "optimum takes the two smalls" 12.0 opt;
  let tpa, _ = Isp.tpa isp in
  check_bool "TPA within factor 2" true (tpa *. 2.0 >= opt)

let test_isp_job_constraint () =
  (* Same job twice: only one candidate may be picked even if disjoint. *)
  let cands =
    [
      { Isp.job = 0; interval = Interval.make 0 1; profit = 5.0 };
      { Isp.job = 0; interval = Interval.make 10 11; profit = 5.0 };
    ]
  in
  let isp = Isp.create ~jobs:1 cands in
  let opt, sel = exact_exn isp in
  check_float "only one" 5.0 opt;
  check_int "selection size" 1 (List.length sel)

let test_isp_negative_profit_ignored () =
  let cands = [ { Isp.job = 0; interval = Interval.make 0 1; profit = -5.0 } ] in
  let isp = Isp.create ~jobs:1 cands in
  let opt, sel = exact_exn isp in
  check_float "nothing selected" 0.0 opt;
  check_int "empty" 0 (List.length sel);
  let tpa, tsel = Isp.tpa isp in
  check_float "tpa nothing" 0.0 tpa;
  check_int "tpa empty" 0 (List.length tsel)

let test_isp_bad_job_rejected () =
  Alcotest.check_raises "job range"
    (Invalid_argument "Isp.create: candidate job out of range") (fun () ->
      ignore (Isp.create ~jobs:1 [ { Isp.job = 1; interval = Interval.make 0 1; profit = 1.0 } ]))

let test_isp_feasibility_detects_overlap () =
  let c1 = { Isp.job = 0; interval = Interval.make 0 5; profit = 1.0 } in
  let c2 = { Isp.job = 1; interval = Interval.make 5 9; profit = 1.0 } in
  let isp = Isp.create ~jobs:2 [ c1; c2 ] in
  check_bool "overlapping selection infeasible" false (Isp.is_feasible isp [ c1; c2 ])

let test_isp_node_limit_typed () =
  (* A tiny limit must yield a typed error, not an exception... *)
  let isp = instance_of (42, 5, 5) in
  (match Isp.exact ~node_limit:3 isp with
  | Error (`Node_limit 3) -> ()
  | Error (`Node_limit n) -> Alcotest.failf "wrong limit reported: %d" n
  | Error (`Budget_exceeded _) -> Alcotest.fail "no budget installed here"
  | Ok _ -> Alcotest.fail "limit of 3 nodes cannot finish this instance");
  (* ... and the degrading wrapper must still return a feasible selection
     (TPA's, at that point). *)
  let v, sel = Isp.exact_or_tpa ~node_limit:3 isp in
  check_bool "fallback selection feasible" true (Isp.is_feasible isp sel);
  let tv, tsel = Isp.tpa isp in
  check_float "fallback value is TPA's" tv v;
  check_int "fallback selection is TPA's" (List.length tsel) (List.length sel)

let () =
  Alcotest.run "fsa_intervals"
    [
      ( "interval",
        [
          Alcotest.test_case "basics" `Quick test_interval_basics;
          Alcotest.test_case "intersect" `Quick test_interval_intersect;
          qtest test_interval_overlap_symmetric_qcheck;
          qtest test_interval_overlap_pointwise_qcheck;
        ] );
      ( "interval_set",
        [
          Alcotest.test_case "add merges" `Quick test_set_add_merges;
          Alcotest.test_case "add disjoint" `Quick test_set_add_disjoint;
          Alcotest.test_case "remove splits" `Quick test_set_remove;
          qtest test_set_semantics_qcheck;
        ] );
      ( "wis",
        [
          qtest test_wis_exact_qcheck;
          Alcotest.test_case "known instance" `Quick test_wis_known;
          Alcotest.test_case "greedy is fooled" `Quick test_wis_greedy_suboptimal;
        ] );
      ( "isp",
        [
          qtest test_isp_tpa_feasible_qcheck;
          qtest test_isp_exact_feasible_qcheck;
          qtest test_isp_tpa_ratio2_qcheck;
          qtest test_isp_upper_bound_qcheck;
          Alcotest.test_case "bait family" `Quick test_isp_tpa_tight_family;
          Alcotest.test_case "job constraint" `Quick test_isp_job_constraint;
          Alcotest.test_case "negative profits" `Quick test_isp_negative_profit_ignored;
          Alcotest.test_case "bad job rejected" `Quick test_isp_bad_job_rejected;
          Alcotest.test_case "feasibility check" `Quick test_isp_feasibility_detects_overlap;
          Alcotest.test_case "node limit typed" `Quick test_isp_node_limit_typed;
        ] );
    ]
