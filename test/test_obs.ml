(* Telemetry subsystem tests: span nesting, counter aggregation across
   registry swaps, JSONL round-trips, and the zero-interference guarantee
   (instrumented solvers return bit-identical solutions). *)

open Fsa_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("a", Json.Int 3);
        ("b", Json.Float 2.5);
        ("c", Json.String "x\"y\n");
        ("d", Json.List [ Json.Bool true; Json.Null ]);
      ]
  in
  let j' = Json.of_string (Json.to_string j) in
  check_bool "roundtrip" true (j = j')

let test_json_special_floats () =
  check_string "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  check_string "inf is null" "null" (Json.to_string (Json.Float Float.infinity));
  check_string "float keeps fraction" "4.0" (Json.to_string (Json.Float 4.0))

let test_json_malformed () =
  check_bool "garbage" true (Json.of_string_opt "{oops" = None);
  check_bool "trailing" true (Json.of_string_opt "1 2" = None)

(* ------------------------------------------------------------------ *)
(* Event codec: every variant must round-trip through to_json/of_json. *)

(* Compile-time exhaustiveness guard: adding an Event.t variant breaks
   this match, which is the reminder to extend [roundtrip_events]. *)
let _all_event_variants_covered : Event.t -> unit = function
  | Event.Span_begin _ | Event.Span_end _ | Event.Phase _ | Event.Move _
  | Event.Step _ | Event.Note _ ->
      ()

let roundtrip_events =
  [
    Event.Span_begin { name = "plain"; depth = 0 };
    Event.Span_begin { name = ""; depth = 17 };
    Event.Span_begin { name = "quote\"backslash\\newline\n"; depth = 3 };
    Event.Span_end
      {
        name = "s";
        depth = 2;
        elapsed_ns = 0.0;
        minor_words = 0.0;
        major_words = 0.0;
      };
    Event.Span_end
      {
        name = "big";
        depth = 0;
        elapsed_ns = 9.75e12;
        minor_words = 1.5e9;
        major_words = 0.25;
      };
    Event.Phase { name = "solve" };
    Event.Phase { name = "" };
    Event.Move
      {
        solver = "csr_improve";
        round = 0;
        label = "accepted move";
        accepted = true;
        score_before = -3.5;
        score_after = 12.25;
      };
    Event.Move
      {
        solver = "full_improve";
        round = 100000;
        label = "rejected";
        accepted = false;
        score_before = 7.0;
        score_after = 7.0;
      };
    Event.Step { solver = "s"; round = 1; evaluated = 0; score = 0.0 };
    Event.Step
      { solver = "s"; round = 4096; evaluated = 123456; score = -0.125 };
    Event.Note { name = "epsilon"; value = 0.05 };
    Event.Note { name = "negative"; value = -1e6 };
  ]

let test_event_roundtrip_exhaustive () =
  List.iter
    (fun ev ->
      (* Through the Json tree... *)
      (match Event.of_json (Event.to_json ev) with
      | Some ev' -> check_bool "tree roundtrip" true (ev = ev')
      | None -> Alcotest.failf "of_json rejected %s" (Format.asprintf "%a" Event.pp ev));
      (* ...and through the serialized text, as a sink would write it. *)
      match Event.of_json (Json.of_string (Json.to_string (Event.to_json ev))) with
      | Some ev' -> check_bool "text roundtrip" true (ev = ev')
      | None -> Alcotest.fail "of_json rejected serialized event")
    roundtrip_events

let test_event_of_json_rejects_malformed () =
  let rejected j = check_bool "rejected" true (Event.of_json j = None) in
  rejected (Json.Obj [ ("type", Json.String "wibble") ]);
  rejected (Json.Obj [ ("name", Json.String "no type") ]);
  rejected Json.Null;
  rejected (Json.String "span_begin");
  (* Each variant with one required field missing. *)
  rejected (Json.Obj [ ("type", Json.String "span_begin"); ("depth", Json.Int 0) ]);
  rejected
    (Json.Obj
       [ ("type", Json.String "span_end"); ("name", Json.String "s");
         ("depth", Json.Int 0); ("minor_words", Json.Float 0.0);
         ("major_words", Json.Float 0.0) ]);
  rejected (Json.Obj [ ("type", Json.String "phase") ]);
  rejected
    (Json.Obj
       [ ("type", Json.String "move"); ("solver", Json.String "s");
         ("round", Json.Int 1); ("label", Json.String "l");
         ("score_before", Json.Float 0.0); ("score_after", Json.Float 1.0) ]);
  rejected
    (Json.Obj
       [ ("type", Json.String "step"); ("solver", Json.String "s");
         ("round", Json.Int 1); ("score", Json.Float 1.0) ]);
  rejected (Json.Obj [ ("type", Json.String "note"); ("value", Json.Float 1.0) ])

let test_event_of_json_ignores_unknown_fields () =
  let j =
    Json.Obj
      [ ("ts", Json.Float 0.25); ("type", Json.String "phase");
        ("name", Json.String "p"); ("extra", Json.List []) ]
  in
  check_bool "transport fields ignored" true
    (Event.of_json j = Some (Event.Phase { name = "p" }))

(* ------------------------------------------------------------------ *)
(* Spans *)

let test_span_nesting () =
  let sink, events = Sink.memory () in
  let registry = Registry.create () in
  Runtime.with_observation ~sink ~registry (fun () ->
      Span.with_ ~name:"outer" (fun () ->
          Span.with_ ~name:"inner" (fun () -> ());
          Span.with_ ~name:"inner" (fun () -> ())));
  let names =
    List.map
      (function
        | Event.Span_begin { name; depth } -> Printf.sprintf "+%s@%d" name depth
        | Event.Span_end { name; depth; _ } -> Printf.sprintf "-%s@%d" name depth
        | _ -> "?")
      (events ())
  in
  Alcotest.(check (list string))
    "nesting order"
    [ "+outer@0"; "+inner@1"; "-inner@1"; "+inner@1"; "-inner@1"; "-outer@0" ]
    names;
  match Registry.span_summary registry "inner" with
  | None -> Alcotest.fail "inner span not recorded"
  | Some s ->
      check_int "inner count" 2 s.Registry.span_count;
      check_bool "total ns nonneg" true (s.Registry.span_total_ns >= 0.0)

let test_span_exception_safe () =
  let sink, events = Sink.memory () in
  Runtime.with_observation ~sink (fun () ->
      (try Span.with_ ~name:"boom" (fun () -> failwith "x") with Failure _ -> ());
      check_int "depth restored" 0 (Span.current_depth ()));
  let ends =
    List.filter (function Event.Span_end _ -> true | _ -> false) (events ())
  in
  check_int "span_end emitted despite raise" 1 (List.length ends)

(* ------------------------------------------------------------------ *)
(* Metrics and registry swaps *)

let test_counter_aggregation () =
  let r1 = Registry.create () in
  let r2 = Registry.create () in
  let c = Metric.Counter.make "test.hits" in
  Runtime.with_observation ~registry:r1 (fun () ->
      Metric.Counter.incr c;
      Metric.Counter.incr ~by:4 c;
      Metric.Counter.add c 0.5);
  Runtime.with_observation ~registry:r2 (fun () -> Metric.Counter.incr c);
  check_bool "r1 total" true (Registry.counter_value r1 "test.hits" = Some 5.5);
  check_bool "r2 independent" true (Registry.counter_value r2 "test.hits" = Some 1.0);
  (* With no registry installed, metric ops are no-ops. *)
  Metric.Counter.incr c;
  check_bool "r1 unchanged when off" true
    (Registry.counter_value r1 "test.hits" = Some 5.5)

let test_gauge_and_histogram () =
  let r = Registry.create () in
  Runtime.with_observation ~registry:r (fun () ->
      Metric.Gauge.set (Metric.Gauge.make "test.g") 7.0;
      let h = Metric.Histogram.make "test.h" in
      List.iter (Metric.Histogram.observe h) [ 1.0; 2.0; 3.0; 4.0 ]);
  check_bool "gauge" true (Registry.gauge_value r "test.g" = Some 7.0);
  match Registry.histogram_summary r "test.h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      check_int "count" 4 h.Registry.count;
      check_float "mean" 2.5 h.Registry.mean;
      check_float "p50" 2.5 h.Registry.p50

(* ------------------------------------------------------------------ *)
(* Sinks: JSONL round-trip *)

let sample_events =
  [
    Event.Span_begin { name = "s"; depth = 0 };
    Event.Phase { name = "solve" };
    Event.Move
      {
        solver = "csr_improve";
        round = 3;
        label = "border match";
        accepted = true;
        score_before = 1.25;
        score_after = 2.75;
      };
    Event.Step { solver = "csr_improve"; round = 4; evaluated = 17; score = 2.75 };
    Event.Note { name = "n"; value = 0.125 };
    Event.Span_end
      {
        name = "s";
        depth = 0;
        elapsed_ns = 1234.5;
        minor_words = 100.0;
        major_words = 0.0;
      };
  ]

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_jsonl_roundtrip () =
  let path = Filename.temp_file "fsa_obs_test" ".jsonl" in
  let sink = Sink.jsonl path in
  List.iter sink.Sink.emit sample_events;
  sink.Sink.close ();
  let lines = read_lines path in
  Sys.remove path;
  check_int "one line per event" (List.length sample_events) (List.length lines);
  let parsed =
    List.map
      (fun line ->
        let j = Json.of_string line in
        check_bool "ts present" true (Json.member "ts" j <> None);
        match Event.of_json j with
        | Some ev -> ev
        | None -> Alcotest.fail ("unparseable event line: " ^ line))
      lines
  in
  check_bool "events round-trip" true (parsed = sample_events)

let test_tee_and_memory () =
  let s1, ev1 = Sink.memory () in
  let s2, ev2 = Sink.memory () in
  let t = Sink.tee s1 s2 in
  t.Sink.emit (Event.Phase { name = "p" });
  t.Sink.close ();
  check_int "first copy" 1 (List.length (ev1 ()));
  check_int "second copy" 1 (List.length (ev2 ()))

(* ------------------------------------------------------------------ *)
(* Zero interference: instrumentation must not change solver output *)

let small_instance seed =
  let rng = Fsa_util.Rng.create seed in
  Fsa_csr.Instance.random_planted rng ~regions:8 ~h_fragments:4 ~m_fragments:4
    ~inversion_rate:0.2 ~noise_pairs:6

let test_null_sink_identical_results () =
  List.iter
    (fun seed ->
      let inst = small_instance seed in
      let plain = Fsa_csr.Solution.score (Fsa_csr.Csr_improve.solve_best inst) in
      let observed =
        Runtime.with_observation ~sink:Sink.null ~registry:(Registry.create ())
          (fun () -> Fsa_csr.Solution.score (Fsa_csr.Csr_improve.solve_best inst))
      in
      check_float "score identical under null sink" plain observed)
    [ 11; 42; 99 ]

let test_solver_trace_has_spans_and_moves () =
  let inst = small_instance 7 in
  let sink, events = Sink.memory () in
  Runtime.with_observation ~sink (fun () ->
      ignore (Fsa_csr.Csr_improve.solve inst));
  let evs = events () in
  let spans =
    List.exists (function Event.Span_begin _ -> true | _ -> false) evs
  in
  let moves =
    List.exists
      (function Event.Move { accepted = true; _ } -> true | _ -> false)
      evs
  in
  check_bool "at least one span" true spans;
  check_bool "at least one accepted move" true moves

let test_observation_restored () =
  Runtime.with_observation ~sink:Sink.null (fun () ->
      check_bool "tracing inside" true (Runtime.tracing ()));
  check_bool "tracing restored" false (Runtime.tracing ());
  check_bool "observing restored" false (Runtime.observing ())

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "special floats" `Quick test_json_special_floats;
          Alcotest.test_case "malformed" `Quick test_json_malformed;
        ] );
      ( "event",
        [
          Alcotest.test_case "roundtrip exhaustive" `Quick
            test_event_roundtrip_exhaustive;
          Alcotest.test_case "rejects malformed" `Quick
            test_event_of_json_rejects_malformed;
          Alcotest.test_case "ignores unknown fields" `Quick
            test_event_of_json_ignores_unknown_fields;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
        ] );
      ( "metric",
        [
          Alcotest.test_case "counter aggregation" `Quick test_counter_aggregation;
          Alcotest.test_case "gauge and histogram" `Quick test_gauge_and_histogram;
        ] );
      ( "sink",
        [
          Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "tee and memory" `Quick test_tee_and_memory;
        ] );
      ( "integration",
        [
          Alcotest.test_case "null sink identical" `Quick
            test_null_sink_identical_results;
          Alcotest.test_case "trace has spans and moves" `Quick
            test_solver_trace_has_spans_and_moves;
          Alcotest.test_case "observation restored" `Quick test_observation_restored;
        ] );
    ]
