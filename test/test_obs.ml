(* Telemetry subsystem tests: span nesting, counter aggregation across
   registry swaps, JSONL round-trips, and the zero-interference guarantee
   (instrumented solvers return bit-identical solutions). *)

open Fsa_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("a", Json.Int 3);
        ("b", Json.Float 2.5);
        ("c", Json.String "x\"y\n");
        ("d", Json.List [ Json.Bool true; Json.Null ]);
      ]
  in
  let j' = Json.of_string (Json.to_string j) in
  check_bool "roundtrip" true (j = j')

let test_json_special_floats () =
  check_string "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  check_string "inf is null" "null" (Json.to_string (Json.Float Float.infinity));
  check_string "float keeps fraction" "4.0" (Json.to_string (Json.Float 4.0))

let test_json_malformed () =
  check_bool "garbage" true (Json.of_string_opt "{oops" = None);
  check_bool "trailing" true (Json.of_string_opt "1 2" = None)

(* ------------------------------------------------------------------ *)
(* Event codec: every variant must round-trip through to_json/of_json. *)

(* Compile-time exhaustiveness guard: adding an Event.t variant breaks
   this match, which is the reminder to extend [roundtrip_events]. *)
let _all_event_variants_covered : Event.t -> unit = function
  | Event.Span_begin _ | Event.Span_end _ | Event.Phase _ | Event.Move _
  | Event.Step _ | Event.Note _ ->
      ()

let roundtrip_events =
  [
    Event.Span_begin { name = "plain"; depth = 0 };
    Event.Span_begin { name = ""; depth = 17 };
    Event.Span_begin { name = "quote\"backslash\\newline\n"; depth = 3 };
    Event.Span_end
      {
        name = "s";
        depth = 2;
        elapsed_ns = 0.0;
        minor_words = 0.0;
        major_words = 0.0;
      };
    Event.Span_end
      {
        name = "big";
        depth = 0;
        elapsed_ns = 9.75e12;
        minor_words = 1.5e9;
        major_words = 0.25;
      };
    Event.Phase { name = "solve" };
    Event.Phase { name = "" };
    Event.Move
      {
        solver = "csr_improve";
        round = 0;
        label = "accepted move";
        accepted = true;
        score_before = -3.5;
        score_after = 12.25;
      };
    Event.Move
      {
        solver = "full_improve";
        round = 100000;
        label = "rejected";
        accepted = false;
        score_before = 7.0;
        score_after = 7.0;
      };
    Event.Step { solver = "s"; round = 1; evaluated = 0; score = 0.0 };
    Event.Step
      { solver = "s"; round = 4096; evaluated = 123456; score = -0.125 };
    Event.Note { name = "epsilon"; value = 0.05 };
    Event.Note { name = "negative"; value = -1e6 };
  ]

let test_event_roundtrip_exhaustive () =
  List.iter
    (fun ev ->
      (* Through the Json tree... *)
      (match Event.of_json (Event.to_json ev) with
      | Some ev' -> check_bool "tree roundtrip" true (ev = ev')
      | None -> Alcotest.failf "of_json rejected %s" (Format.asprintf "%a" Event.pp ev));
      (* ...and through the serialized text, as a sink would write it. *)
      match Event.of_json (Json.of_string (Json.to_string (Event.to_json ev))) with
      | Some ev' -> check_bool "text roundtrip" true (ev = ev')
      | None -> Alcotest.fail "of_json rejected serialized event")
    roundtrip_events

let test_event_of_json_rejects_malformed () =
  let rejected j = check_bool "rejected" true (Event.of_json j = None) in
  rejected (Json.Obj [ ("type", Json.String "wibble") ]);
  rejected (Json.Obj [ ("name", Json.String "no type") ]);
  rejected Json.Null;
  rejected (Json.String "span_begin");
  (* Each variant with one required field missing. *)
  rejected (Json.Obj [ ("type", Json.String "span_begin"); ("depth", Json.Int 0) ]);
  rejected
    (Json.Obj
       [ ("type", Json.String "span_end"); ("name", Json.String "s");
         ("depth", Json.Int 0); ("minor_words", Json.Float 0.0);
         ("major_words", Json.Float 0.0) ]);
  rejected (Json.Obj [ ("type", Json.String "phase") ]);
  rejected
    (Json.Obj
       [ ("type", Json.String "move"); ("solver", Json.String "s");
         ("round", Json.Int 1); ("label", Json.String "l");
         ("score_before", Json.Float 0.0); ("score_after", Json.Float 1.0) ]);
  rejected
    (Json.Obj
       [ ("type", Json.String "step"); ("solver", Json.String "s");
         ("round", Json.Int 1); ("score", Json.Float 1.0) ]);
  rejected (Json.Obj [ ("type", Json.String "note"); ("value", Json.Float 1.0) ])

let test_event_of_json_ignores_unknown_fields () =
  let j =
    Json.Obj
      [ ("ts", Json.Float 0.25); ("type", Json.String "phase");
        ("name", Json.String "p"); ("extra", Json.List []) ]
  in
  check_bool "transport fields ignored" true
    (Event.of_json j = Some (Event.Phase { name = "p" }))

(* ------------------------------------------------------------------ *)
(* Spans *)

let test_span_nesting () =
  let sink, events = Sink.memory () in
  let registry = Registry.create () in
  Runtime.with_observation ~sink ~registry (fun () ->
      Span.with_ ~name:"outer" (fun () ->
          Span.with_ ~name:"inner" (fun () -> ());
          Span.with_ ~name:"inner" (fun () -> ())));
  let names =
    List.map
      (function
        | Event.Span_begin { name; depth } -> Printf.sprintf "+%s@%d" name depth
        | Event.Span_end { name; depth; _ } -> Printf.sprintf "-%s@%d" name depth
        | _ -> "?")
      (events ())
  in
  Alcotest.(check (list string))
    "nesting order"
    [ "+outer@0"; "+inner@1"; "-inner@1"; "+inner@1"; "-inner@1"; "-outer@0" ]
    names;
  match Registry.span_summary registry "inner" with
  | None -> Alcotest.fail "inner span not recorded"
  | Some s ->
      check_int "inner count" 2 s.Registry.span_count;
      check_bool "total ns nonneg" true (s.Registry.span_total_ns >= 0.0)

let test_span_exception_safe () =
  let sink, events = Sink.memory () in
  Runtime.with_observation ~sink (fun () ->
      (try Span.with_ ~name:"boom" (fun () -> failwith "x") with Failure _ -> ());
      check_int "depth restored" 0 (Span.current_depth ()));
  let ends =
    List.filter (function Event.Span_end _ -> true | _ -> false) (events ())
  in
  check_int "span_end emitted despite raise" 1 (List.length ends)

(* ------------------------------------------------------------------ *)
(* Metrics and registry swaps *)

let test_counter_aggregation () =
  let r1 = Registry.create () in
  let r2 = Registry.create () in
  let c = Metric.Counter.make "test.hits" in
  Runtime.with_observation ~registry:r1 (fun () ->
      Metric.Counter.incr c;
      Metric.Counter.incr ~by:4 c;
      Metric.Counter.add c 0.5);
  Runtime.with_observation ~registry:r2 (fun () -> Metric.Counter.incr c);
  check_bool "r1 total" true (Registry.counter_value r1 "test.hits" = Some 5.5);
  check_bool "r2 independent" true (Registry.counter_value r2 "test.hits" = Some 1.0);
  (* With no registry installed, metric ops are no-ops. *)
  Metric.Counter.incr c;
  check_bool "r1 unchanged when off" true
    (Registry.counter_value r1 "test.hits" = Some 5.5)

let test_gauge_and_histogram () =
  let r = Registry.create () in
  Runtime.with_observation ~registry:r (fun () ->
      Metric.Gauge.set (Metric.Gauge.make "test.g") 7.0;
      let h = Metric.Histogram.make "test.h" in
      List.iter (Metric.Histogram.observe h) [ 1.0; 2.0; 3.0; 4.0 ]);
  check_bool "gauge" true (Registry.gauge_value r "test.g" = Some 7.0);
  match Registry.histogram_summary r "test.h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      check_int "count" 4 h.Registry.count;
      check_float "mean" 2.5 h.Registry.mean;
      check_float "p50" 2.5 h.Registry.p50

(* ------------------------------------------------------------------ *)
(* Sinks: JSONL round-trip *)

let sample_events =
  [
    Event.Span_begin { name = "s"; depth = 0 };
    Event.Phase { name = "solve" };
    Event.Move
      {
        solver = "csr_improve";
        round = 3;
        label = "border match";
        accepted = true;
        score_before = 1.25;
        score_after = 2.75;
      };
    Event.Step { solver = "csr_improve"; round = 4; evaluated = 17; score = 2.75 };
    Event.Note { name = "n"; value = 0.125 };
    Event.Span_end
      {
        name = "s";
        depth = 0;
        elapsed_ns = 1234.5;
        minor_words = 100.0;
        major_words = 0.0;
      };
  ]

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_jsonl_roundtrip () =
  let path = Filename.temp_file "fsa_obs_test" ".jsonl" in
  let sink = Sink.jsonl path in
  List.iter sink.Sink.emit sample_events;
  sink.Sink.close ();
  let lines = read_lines path in
  Sys.remove path;
  check_int "header + one line per event"
    (1 + List.length sample_events)
    (List.length lines);
  let header, event_lines =
    match lines with h :: rest -> (h, rest) | [] -> Alcotest.fail "empty file"
  in
  (match Json.member "schema" (Json.of_string header) with
  | Some (Json.String s) -> Alcotest.(check string) "schema" "fsa-trace/2" s
  | _ -> Alcotest.fail "missing schema header");
  let parsed =
    List.map
      (fun line ->
        let j = Json.of_string line in
        check_bool "ts present" true (Json.member "ts" j <> None);
        check_bool "domain present" true (Json.member "domain" j <> None);
        match Event.of_json j with
        | Some ev -> ev
        | None -> Alcotest.fail ("unparseable event line: " ^ line))
      event_lines
  in
  check_bool "events round-trip" true (parsed = sample_events)

let test_tee_and_memory () =
  let s1, ev1 = Sink.memory () in
  let s2, ev2 = Sink.memory () in
  let t = Sink.tee s1 s2 in
  t.Sink.emit (Event.Phase { name = "p" });
  t.Sink.close ();
  check_int "first copy" 1 (List.length (ev1 ()));
  check_int "second copy" 1 (List.length (ev2 ()))

let test_buffer_sink_bounded () =
  let sink, drain, dropped = Sink.buffer ~capacity:3 () in
  for i = 1 to 5 do
    sink.Sink.emit (Event.Note { name = "n"; value = float_of_int i })
  done;
  let kept = drain () in
  check_int "keeps the first capacity events" 3 (List.length kept);
  check_int "counts the rest as dropped" 2 (dropped ());
  match kept with
  | { Sink.s_event = Event.Note { value; _ }; _ } :: _ ->
      check_float "oldest event kept" 1.0 value
  | _ -> Alcotest.fail "expected the first note"

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let test_flight_ring () =
  let fr = Flight.create ~capacity:4 () in
  let sink = Flight.sink fr in
  for i = 1 to 10 do
    sink.Sink.emit (Event.Note { name = "ev"; value = float_of_int i })
  done;
  check_int "recorded all" 10 (Flight.recorded fr);
  check_int "overflow dropped" 6 (Flight.dropped fr);
  let evs = Flight.events fr in
  check_int "retains capacity" 4 (List.length evs);
  (match evs with
  | { Sink.s_event = Event.Note { value; _ }; _ } :: _ ->
      check_float "oldest retained is event 7" 7.0 value
  | _ -> Alcotest.fail "expected a note");
  match Flight.last_event fr with
  | Some { Sink.s_event = Event.Note { value; _ }; _ } ->
      check_float "last retained is event 10" 10.0 value
  | _ -> Alcotest.fail "expected a note"

let test_flight_dump_readable () =
  let fr = Flight.create ~capacity:4 () in
  let sink = Flight.sink fr in
  for i = 1 to 6 do
    sink.Sink.emit (Event.Note { name = "ev"; value = float_of_int i })
  done;
  let path = Filename.temp_file "fsa_flight" ".jsonl" in
  Flight.dump ~reason:"test" fr path;
  let t = Trace.of_file path in
  Sys.remove path;
  check_int "events parse back" 4 t.Trace.events;
  check_int "header is metadata, not a skip" 0 t.Trace.skipped;
  check_int "one dump recorded" 1 (Flight.dumps fr)

let test_flight_dump_on_budget_trip () =
  let path = Filename.temp_file "fsa_flight" ".jsonl" in
  let fr = Flight.create () in
  let hook = Flight.arm fr ~path in
  Runtime.with_observation ~sink:(Flight.sink fr) (fun () ->
      let b = Budget.create ~probes:3 () in
      let outcome =
        Budget.run b
          ~partial:(fun () -> ())
          (fun () ->
            let i = ref 0 in
            while true do
              incr i;
              Runtime.emit (Event.Note { name = "probe"; value = float_of_int !i });
              Budget.check ()
            done)
      in
      check_bool "budget tripped" true
        (match outcome with
        | Error (`Budget_exceeded ((), `Probes)) -> true
        | _ -> false));
  Flight.disarm hook;
  check_int "trip dumped exactly once" 1 (Flight.dumps fr);
  (* The dump's last event must identify the trip site. *)
  (match Flight.last_event fr with
  | Some { Sink.s_event = Event.Note { name; _ }; _ } ->
      check_string "trip marker is the last ring event"
        "flight.budget_trip.probes" name
  | _ -> Alcotest.fail "expected the trip marker");
  let lines = read_lines path in
  Sys.remove path;
  (match lines with
  | header :: _ -> (
      match Json.member "reason" (Json.of_string header) with
      | Some (Json.String r) -> check_string "reason" "budget_trip:probes" r
      | _ -> Alcotest.fail "dump header has no reason")
  | [] -> Alcotest.fail "empty dump");
  match List.rev lines with
  | last :: _ -> (
      match Event.of_json (Json.of_string last) with
      | Some (Event.Note { name; _ }) ->
          check_string "last dumped line is the trip marker"
            "flight.budget_trip.probes" name
      | _ -> Alcotest.fail "last dump line is not the trip note")
  | [] -> assert false

(* ------------------------------------------------------------------ *)
(* Zero interference: instrumentation must not change solver output *)

let small_instance seed =
  let rng = Fsa_util.Rng.create seed in
  Fsa_csr.Instance.random_planted rng ~regions:8 ~h_fragments:4 ~m_fragments:4
    ~inversion_rate:0.2 ~noise_pairs:6

let test_null_sink_identical_results () =
  List.iter
    (fun seed ->
      let inst = small_instance seed in
      let plain = Fsa_csr.Solution.score (Fsa_csr.Csr_improve.solve_best inst) in
      let observed =
        Runtime.with_observation ~sink:Sink.null ~registry:(Registry.create ())
          (fun () -> Fsa_csr.Solution.score (Fsa_csr.Csr_improve.solve_best inst))
      in
      check_float "score identical under null sink" plain observed)
    [ 11; 42; 99 ]

let test_solver_trace_has_spans_and_moves () =
  let inst = small_instance 7 in
  let sink, events = Sink.memory () in
  Runtime.with_observation ~sink (fun () ->
      ignore (Fsa_csr.Csr_improve.solve inst));
  let evs = events () in
  let spans =
    List.exists (function Event.Span_begin _ -> true | _ -> false) evs
  in
  let moves =
    List.exists
      (function Event.Move { accepted = true; _ } -> true | _ -> false)
      evs
  in
  check_bool "at least one span" true spans;
  check_bool "at least one accepted move" true moves

let test_observation_restored () =
  Runtime.with_observation ~sink:Sink.null (fun () ->
      check_bool "tracing inside" true (Runtime.tracing ()));
  check_bool "tracing restored" false (Runtime.tracing ());
  check_bool "observing restored" false (Runtime.observing ())

let contains_sub text needle =
  let n = String.length needle and m = String.length text in
  let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Registry reset between workloads *)

let test_registry_reset () =
  let r = Registry.create () in
  Runtime.with_observation ~registry:r (fun () ->
      Metric.Counter.incr ~by:3 (Metric.Counter.make "reset.c");
      Metric.Gauge.set (Metric.Gauge.make "reset.g") 2.0;
      Span.with_ ~name:"reset.span" (fun () -> ());
      Registry.reset ();
      (* Metric handles survive the reset; new increments land fresh. *)
      Metric.Counter.incr (Metric.Counter.make "reset.c"));
  check_bool "counter restarted" true (Registry.counter_value r "reset.c" = Some 1.0);
  check_bool "gauge cleared" true (Registry.gauge_value r "reset.g" = None);
  check_bool "span totals cleared" true (Registry.span_summary r "reset.span" = None);
  (* No registry installed: reset is a harmless no-op. *)
  Registry.reset ()

(* ------------------------------------------------------------------ *)
(* Sampler: deterministic count-based sampling of the live span stack *)

let sampler_workload s =
  Runtime.with_observation ~sink:Sink.null (fun () ->
      Span.with_ ~name:"a" (fun () ->
          (* Ticks 1-4: stride 3 samples tick 3 with only [a] open. *)
          for _ = 1 to 4 do
            Sampler.tick s
          done;
          Span.with_ ~name:"b" (fun () ->
              (* Ticks 5-9: samples ticks 6 and 9 under a;b. *)
              for _ = 1 to 5 do
                Sampler.tick s
              done));
      (* Ticks 10-12: sample at 12 finds no open span — idle. *)
      for _ = 1 to 3 do
        Sampler.tick s
      done)

let test_sampler_deterministic () =
  let run () =
    let s = Sampler.create ~every:3 () in
    sampler_workload s;
    (Sampler.ticks s, Sampler.samples s, Sampler.idle s, Sampler.folded s)
  in
  let ticks, samples, idle, folded = run () in
  check_int "ticks" 12 ticks;
  check_int "samples" 4 samples;
  check_int "idle" 1 idle;
  check_string "folded stacks" "a 1\na;b 2\n" folded;
  let _, _, _, folded' = run () in
  check_string "identical on rerun" folded folded';
  (* reset clears every accumulator but keeps the stride. *)
  let s = Sampler.create ~every:3 () in
  sampler_workload s;
  Sampler.reset s;
  check_int "reset ticks" 0 (Sampler.ticks s);
  check_string "reset folded" "" (Sampler.folded s);
  sampler_workload s;
  check_string "same stream after reset" folded (Sampler.folded s)

let test_sampler_counts_and_top_frames () =
  let s = Sampler.create ~every:3 () in
  sampler_workload s;
  Alcotest.(check (list (pair string int)))
    "counts, most-sampled first"
    [ ("a;b", 2); ("a", 1) ]
    (Sampler.counts s);
  Alcotest.(check (list (pair string int)))
    "leaf frames" [ ("b", 2); ("a", 1) ] (Sampler.top_frames s);
  Alcotest.check_raises "every must be positive"
    (Invalid_argument "Sampler.create: every must be positive") (fun () ->
      ignore (Sampler.create ~every:0 ()))

let test_sampler_attach_ticks_on_check () =
  let s = Sampler.create ~every:2 () in
  Sampler.with_ s (fun () ->
      Runtime.with_observation ~sink:Sink.null (fun () ->
          Span.with_ ~name:"hot" (fun () ->
              for _ = 1 to 10 do
                Budget.check ()
              done)));
  check_int "hooked ticks" 10 (Sampler.ticks s);
  check_int "hooked samples" 5 (Sampler.samples s);
  check_string "hooked folded" "hot 5\n" (Sampler.folded s);
  (* Detached: checkpoints no longer tick the sampler. *)
  Budget.check ();
  check_int "no tick after detach" 10 (Sampler.ticks s)

(* The statistical profile must agree with full tracing on what is hot:
   the sampler's most-sampled leaf frame is among the top self-time spans
   of the trace of the same run. *)
let test_sampler_consistent_with_trace () =
  let inst = small_instance 42 in
  let s = Sampler.create ~every:1 () in
  let sink, events = Sink.memory () in
  Sampler.with_ s (fun () ->
      Runtime.with_observation ~sink (fun () ->
          ignore (Fsa_csr.Csr_improve.solve inst)));
  check_bool "sampled something" true (Sampler.samples s > Sampler.idle s);
  let trace = Trace.of_events (List.map (fun ev -> (None, ev)) (events ())) in
  let top_trace =
    List.filteri (fun i _ -> i < 3) (Trace.profile trace)
    |> List.map (fun r -> r.Trace.row_name)
  in
  match Sampler.top_frames s with
  | [] -> Alcotest.fail "no frames sampled"
  | (top_frame, _) :: _ ->
      check_bool
        (Printf.sprintf "sampler top frame %s in trace top-3 [%s]" top_frame
           (String.concat "; " top_trace))
        true
        (List.mem top_frame top_trace)

(* ------------------------------------------------------------------ *)
(* Series: fsa-series/1 write/read round-trip *)

let with_series_file f =
  let path = Filename.temp_file "fsa_series_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_series_roundtrip () =
  with_series_file @@ fun path ->
  let r = Registry.create () in
  let w = Series.to_file r path in
  let c = Metric.Counter.make "series.hits" in
  let g = Metric.Gauge.make "series.depth" in
  let h = Metric.Histogram.make "series.size" in
  Runtime.with_observation ~registry:r (fun () ->
      Metric.Counter.incr ~by:5 c;
      Metric.Gauge.set g 2.0;
      List.iter (Metric.Histogram.observe h) [ 1.0; 3.0 ];
      Series.sample w;
      Metric.Counter.incr ~by:2 c;
      Metric.Gauge.set g 7.0;
      Series.sample w);
  Series.close w;
  check_int "samples counted" 3 (Series.samples w);
  Series.sample w;
  check_int "sample after close is a no-op" 3 (Series.samples w);
  (* Header line first, then one record per sample. *)
  let lines = read_lines path in
  check_int "header + one line per sample" 4 (List.length lines);
  check_bool "header first" true
    (String.length (List.hd lines) > 0
    && Json.member "schema" (Json.of_string (List.hd lines))
       = Some (Json.String "fsa-series/1"));
  let doc = Series.of_file path in
  check_int "no skipped lines" 0 doc.Series.skipped;
  check_bool "started recorded" true (doc.Series.started <> None);
  match doc.Series.points with
  | [ p1; p2; p3 ] ->
      check_bool "t monotonic" true
        (0.0 <= p1.Series.t && p1.Series.t <= p2.Series.t
        && p2.Series.t <= p3.Series.t);
      check_bool "first deltas" true
        (List.assoc "series.hits" p1.Series.counters = 5.0);
      check_bool "second deltas" true
        (List.assoc "series.hits" p2.Series.counters = 2.0);
      (* Final close-sample has no new counter activity. *)
      check_bool "no stale delta" true
        (List.assoc_opt "series.hits" p3.Series.counters = None);
      check_bool "gauges absolute" true
        (List.assoc "series.depth" p1.Series.gauges = 2.0
        && List.assoc "series.depth" p2.Series.gauges = 7.0);
      let hp = List.assoc "series.size" p1.Series.hists in
      check_int "hist dcount" 2 hp.Series.dcount;
      check_float "hist dsum" 4.0 hp.Series.dsum
  | pts -> Alcotest.failf "expected 3 points, got %d" (List.length pts)

let test_series_reset_clamps_deltas () =
  with_series_file @@ fun path ->
  let r = Registry.create () in
  let w = Series.to_file r path in
  let c = Metric.Counter.make "clamp.c" in
  Runtime.with_observation ~registry:r (fun () ->
      Metric.Counter.incr ~by:5 c;
      Series.sample w;
      (* Bench harness pattern: zero the registry between workloads. *)
      Registry.reset ();
      Metric.Counter.incr ~by:2 c;
      Series.sample w);
  Series.close w;
  let doc = Series.of_file path in
  match doc.Series.points with
  | p1 :: p2 :: _ ->
      check_bool "pre-reset delta" true (List.assoc "clamp.c" p1.Series.counters = 5.0);
      (* Not 2 - 5 = -3: a reading below the previous one clamps to the
         current value, so resets never produce negative rates. *)
      check_bool "post-reset delta clamped" true
        (List.assoc "clamp.c" p2.Series.counters = 2.0)
  | _ -> Alcotest.fail "expected at least 2 points"

let test_series_of_string_forgiving () =
  let doc =
    Series.of_string
      "{\"schema\":\"fsa-series/1\",\"clock\":\"monotonic\",\"started\":\"x\"}\n\
       not json at all\n\
       {\"t\":0.5,\"counters\":{\"a\":1.0},\"gauges\":{},\"future_field\":[1,2]}\n\
       {\"t\":\"not a number\"}\n"
  in
  check_int "skipped junk" 2 doc.Series.skipped;
  check_int "kept the valid record" 1 (List.length doc.Series.points);
  check_bool "unknown fields ignored" true
    ((List.hd doc.Series.points).Series.counters = [ ("a", 1.0) ])

let test_series_prometheus () =
  let r = Registry.create () in
  Runtime.with_observation ~registry:r (fun () ->
      Metric.Counter.incr ~by:3 (Metric.Counter.make "prom.hits");
      Metric.Gauge.set (Metric.Gauge.make "prom.depth-max") 4.5;
      List.iter
        (Metric.Histogram.observe (Metric.Histogram.make "prom.size"))
        [ 1.0; 2.0 ];
      Span.with_ ~name:"prom.span" (fun () -> ()));
  let text = Series.prometheus r in
  let has needle =
    check_bool
      (Printf.sprintf "exposition contains %S" needle)
      true (contains_sub text needle)
  in
  has "# TYPE fsa_prom_hits counter";
  has "fsa_prom_hits 3";
  (* '-' is outside the Prometheus charset and must be sanitized. *)
  has "fsa_prom_depth_max 4.5";
  has "# TYPE fsa_prom_size summary";
  has "fsa_prom_size{quantile=\"0.5\"}";
  has "fsa_prom_size_count 2";
  has "fsa_span_prom_span_count 1";
  has "fsa_span_prom_span_total_ns"

let test_series_plot_and_summary () =
  with_series_file @@ fun path ->
  let r = Registry.create () in
  let w = Series.to_file r path in
  let c = Metric.Counter.make "plot.c" in
  Runtime.with_observation ~registry:r (fun () ->
      for i = 1 to 5 do
        Metric.Counter.incr ~by:i c;
        Series.sample w
      done);
  Series.close w;
  let doc = Series.of_file path in
  Alcotest.(check (list string)) "metric names" [ "plot.c" ] (Series.metric_names doc);
  let chart = Series.plot ~width:20 ~height:4 doc ~metric:"plot.c" in
  check_bool "chart mentions metric" true
    (String.length chart > 0 && String.sub chart 0 6 = "plot.c");
  check_bool "chart has columns" true (String.contains chart '#');
  check_bool "summary lists totals" true (contains_sub (Series.doc_summary doc) "plot.c");
  (* prometheus_of_doc sums the deltas back to the cumulative total. *)
  check_bool "doc exposition totals" true
    (contains_sub (Series.prometheus_of_doc doc) "fsa_plot_c 15")

(* ------------------------------------------------------------------ *)
(* Export: the span-tree line cap *)

let test_export_max_lines () =
  let events =
    List.concat_map
      (fun i ->
        let name = Printf.sprintf "s%d" i in
        [
          (None, Event.Span_begin { name; depth = 0 });
          ( None,
            Event.Span_end
              {
                name;
                depth = 0;
                elapsed_ns = 1000.0;
                minor_words = 0.0;
                major_words = 0.0;
              } );
        ])
      (List.init 10 (fun i -> i))
  in
  let t = Trace.of_events events in
  let full = Export.summary t in
  let capped = Export.summary ~max_lines:4 t in
  let contains needle text = contains_sub text needle in
  check_bool "full tree lists every span" true (contains "s9" full);
  check_bool "full tree not truncated" false (contains "more node(s)" full);
  check_bool "capped tree truncated" true (contains "6 more node(s)" capped);
  check_bool "capped drops the tail" false (contains "s9  1.00 us" capped);
  (* The aggregated profile still covers suppressed nodes. *)
  check_bool "profile keeps all rows" true (contains "| s9" capped)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "special floats" `Quick test_json_special_floats;
          Alcotest.test_case "malformed" `Quick test_json_malformed;
        ] );
      ( "event",
        [
          Alcotest.test_case "roundtrip exhaustive" `Quick
            test_event_roundtrip_exhaustive;
          Alcotest.test_case "rejects malformed" `Quick
            test_event_of_json_rejects_malformed;
          Alcotest.test_case "ignores unknown fields" `Quick
            test_event_of_json_ignores_unknown_fields;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
        ] );
      ( "metric",
        [
          Alcotest.test_case "counter aggregation" `Quick test_counter_aggregation;
          Alcotest.test_case "gauge and histogram" `Quick test_gauge_and_histogram;
        ] );
      ( "sink",
        [
          Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "tee and memory" `Quick test_tee_and_memory;
          Alcotest.test_case "buffer sink bounded" `Quick test_buffer_sink_bounded;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring retention" `Quick test_flight_ring;
          Alcotest.test_case "dump readable" `Quick test_flight_dump_readable;
          Alcotest.test_case "dump on budget trip" `Quick
            test_flight_dump_on_budget_trip;
        ] );
      ( "integration",
        [
          Alcotest.test_case "null sink identical" `Quick
            test_null_sink_identical_results;
          Alcotest.test_case "trace has spans and moves" `Quick
            test_solver_trace_has_spans_and_moves;
          Alcotest.test_case "observation restored" `Quick test_observation_restored;
          Alcotest.test_case "registry reset" `Quick test_registry_reset;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "deterministic" `Quick test_sampler_deterministic;
          Alcotest.test_case "counts and top frames" `Quick
            test_sampler_counts_and_top_frames;
          Alcotest.test_case "attach ticks on check" `Quick
            test_sampler_attach_ticks_on_check;
          Alcotest.test_case "consistent with trace" `Quick
            test_sampler_consistent_with_trace;
        ] );
      ( "series",
        [
          Alcotest.test_case "roundtrip" `Quick test_series_roundtrip;
          Alcotest.test_case "reset clamps deltas" `Quick
            test_series_reset_clamps_deltas;
          Alcotest.test_case "forgiving parse" `Quick test_series_of_string_forgiving;
          Alcotest.test_case "prometheus" `Quick test_series_prometheus;
          Alcotest.test_case "plot and summary" `Quick test_series_plot_and_summary;
        ] );
      ( "export",
        [ Alcotest.test_case "max lines cap" `Quick test_export_max_lines ] );
    ]
