(* Tests for the CSR data model: instances, matches (Def 3-4), consistent
   solutions (Def 2, Def 5), and the conjecture-pair construction
   (Remark 1): every solution our algorithms can produce must materialize
   as a conjecture pair of exactly equal score. *)

open Fsa_seq
open Fsa_csr

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let qtest t = QCheck_alcotest.to_alcotest ~verbose:false t

let paper = Instance.paper_example

(* ------------------------------------------------------------------ *)
(* Instance                                                             *)

let test_paper_example_shape () =
  let inst = paper () in
  check_int "h fragments" 2 (Instance.fragment_count inst Species.H);
  check_int "m fragments" 2 (Instance.fragment_count inst Species.M);
  check_int "h length" 4 (Instance.total_length inst Species.H);
  check_int "m length" 4 (Instance.total_length inst Species.M);
  check_int "max matches" 4 (Instance.max_matches inst)

let test_paper_example_sigma () =
  let inst = paper () in
  let sym n = Alphabet.symbol_of_string inst.Instance.alphabet n in
  check_float "σ(a,s)" 4.0 (Scoring.get inst.Instance.sigma (sym "a") (sym "s"));
  check_float "σ(b,t')" 3.0 (Scoring.get inst.Instance.sigma (sym "b") (sym "t'"));
  check_float "σ(b,t)" 0.0 (Scoring.get inst.Instance.sigma (sym "b") (sym "t"));
  check_float "σ(d,v')" 2.0 (Scoring.get inst.Instance.sigma (sym "d") (sym "v'"))

let test_text_roundtrip () =
  let inst = paper () in
  let inst2 = Instance.of_text (Instance.to_text inst) in
  check_int "h count" (Instance.fragment_count inst Species.H)
    (Instance.fragment_count inst2 Species.H);
  (* Re-serializing the parse must be a fixpoint. *)
  Alcotest.(check string) "serialization fixpoint" (Instance.to_text inst2)
    (Instance.to_text (Instance.of_text (Instance.to_text inst2)));
  (* And the optimum is preserved. *)
  check_float "same optimum" (Exact.solve_score inst) (Exact.solve_score inst2)

let test_text_rejects_garbage () =
  check_bool "garbage rejected" true
    (try
       ignore (Instance.of_text "X nonsense");
       false
     with Failure _ -> true)

let test_random_planted_wellformed_qcheck =
  QCheck.Test.make ~name:"planted generator produces well-formed instances" ~count:50
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Fsa_util.Rng.create seed in
      let inst =
        Instance.random_planted rng ~regions:10 ~h_fragments:3 ~m_fragments:4
          ~inversion_rate:0.2 ~noise_pairs:3
      in
      Instance.total_length inst Species.H = 10
      && Instance.total_length inst Species.M = 10
      && Instance.fragment_count inst Species.H = 3
      && Instance.fragment_count inst Species.M = 4)

let test_random_uniform_wellformed_qcheck =
  QCheck.Test.make ~name:"uniform generator produces well-formed instances" ~count:50
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Fsa_util.Rng.create seed in
      let inst =
        Instance.random_uniform rng ~regions:8 ~h_fragments:2 ~m_fragments:3 ~density:0.3
      in
      Instance.total_length inst Species.H = 8
      && Instance.total_length inst Species.M = 8)

(* ------------------------------------------------------------------ *)
(* Cmatch                                                               *)

let test_full_match_classify () =
  let inst = paper () in
  (* plug h2 = ⟨d⟩ into m1's site (1,1) = t: σ(d,t) = 2 forward. *)
  let m = Cmatch.full inst ~full_side:Species.H 1 ~other_frag:0 ~other_site:(Site.make 1 1) in
  check_float "score" 2.0 m.Cmatch.score;
  check_bool "forward" false m.Cmatch.m_reversed;
  check_bool "classified full" true (Cmatch.classify inst m = Some Cmatch.Full_match)

let test_full_match_orientation_choice () =
  let inst = paper () in
  (* plug h2 = ⟨d⟩ into m2's site (1,1) = v: σ(d,v') = 2 needs reversal. *)
  let m = Cmatch.full inst ~full_side:Species.H 1 ~other_frag:1 ~other_site:(Site.make 1 1) in
  check_float "score" 2.0 m.Cmatch.score;
  check_bool "reversed" true m.Cmatch.m_reversed

let test_full_match_m_side () =
  let inst = paper () in
  (* plug m1 = ⟨s,t⟩ into h1's prefix (0,1) = ⟨a,b⟩: σ(a,s) = 4. *)
  let m = Cmatch.full inst ~full_side:Species.M 0 ~other_frag:0 ~other_site:(Site.make 0 1) in
  check_float "score" 4.0 m.Cmatch.score;
  check_bool "full match" true (Cmatch.classify inst m = Some Cmatch.Full_match)

let test_border_geometry () =
  let inst = paper () in
  (* h1 suffix ⟨c⟩ with m2 prefix ⟨u⟩: opposite shapes, forward, σ(c,u)=5. *)
  match Cmatch.border inst ~h_frag:0 ~h_site:(Site.make 2 2) ~m_frag:1 ~m_site:(Site.make 0 0) with
  | None -> Alcotest.fail "expected a border match"
  | Some b ->
      check_float "score" 5.0 b.Cmatch.score;
      check_bool "forward for opposite shapes" false b.Cmatch.m_reversed;
      check_bool "border kind" true (Cmatch.classify inst b = Some Cmatch.Border_match)

let test_border_equal_shapes_reversed () =
  let inst = paper () in
  (* h1 prefix with m1 prefix: equal shapes force the reversed orientation. *)
  match Cmatch.border inst ~h_frag:0 ~h_site:(Site.make 0 0) ~m_frag:0 ~m_site:(Site.make 0 0) with
  | None -> Alcotest.fail "expected a border match"
  | Some b -> check_bool "reversed forced" true b.Cmatch.m_reversed

let test_border_rejects_full_site () =
  let inst = paper () in
  (* h2 has length 1: its only site is Full, not border. *)
  check_bool "full site rejected" true
    (Cmatch.border inst ~h_frag:1 ~h_site:(Site.make 0 0) ~m_frag:0 ~m_site:(Site.make 0 0)
    = None)

let test_classify_rejects_bad_orientation () =
  let inst = paper () in
  (* Build a shape-incompatible border match by hand: equal shapes with
     forward orientation are not realizable. *)
  let bad =
    {
      Cmatch.h_frag = 0;
      h_site = Site.make 0 0;
      m_frag = 0;
      m_site = Site.make 0 0;
      m_reversed = false;
      score = 0.0;
    }
  in
  check_bool "rejected" true (Cmatch.classify inst bad = None)

let test_classify_rejects_inner_inner () =
  let alphabet = Alphabet.of_names [ "a"; "b"; "c"; "d"; "x"; "y"; "z"; "w" ] in
  let sym = Alphabet.symbol_of_string alphabet in
  let h = Fragment.make "h" [| sym "a"; sym "b"; sym "c"; sym "d" |] in
  let m = Fragment.make "m" [| sym "x"; sym "y"; sym "z"; sym "w" |] in
  let inst = Instance.make ~alphabet ~h:[ h ] ~m:[ m ] ~sigma:(Scoring.create ()) in
  let bad =
    {
      Cmatch.h_frag = 0;
      h_site = Site.make 1 2;
      m_frag = 0;
      m_site = Site.make 1 2;
      m_reversed = false;
      score = 0.0;
    }
  in
  check_bool "inner x inner rejected" true (Cmatch.classify inst bad = None)

let test_recompute_score_orientation () =
  let inst = paper () in
  let m = Cmatch.full inst ~full_side:Species.H 1 ~other_frag:1 ~other_site:(Site.make 1 1) in
  check_float "recompute agrees" m.Cmatch.score (Cmatch.recompute_score inst m)

(* ------------------------------------------------------------------ *)
(* Solution                                                             *)

let fig5_solution inst =
  (* The Fig 5 optimum: (h1(0,1), m1 full), border (h1(2,2), m2(0,0)),
     (h2 full reversed, m2(1,1)). *)
  let m1 = Cmatch.full inst ~full_side:Species.M 0 ~other_frag:0 ~other_site:(Site.make 0 1) in
  let m2 =
    match Cmatch.border inst ~h_frag:0 ~h_site:(Site.make 2 2) ~m_frag:1 ~m_site:(Site.make 0 0) with
    | Some b -> b
    | None -> Alcotest.fail "border construction failed"
  in
  let m3 = Cmatch.full inst ~full_side:Species.H 1 ~other_frag:1 ~other_site:(Site.make 1 1) in
  match Solution.of_matches inst [ m1; m2; m3 ] with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let test_fig5_solution_score () =
  let inst = paper () in
  let s = fig5_solution inst in
  check_float "score 11" 11.0 (Solution.score s);
  check_int "three matches" 3 (Solution.size s);
  check_int "one island" 1 (List.length (Solution.islands s))

let test_fig5_roles () =
  let inst = paper () in
  let s = fig5_solution inst in
  check_bool "h1 multiple" true (Solution.role s Species.H 0 = Solution.Multiple);
  check_bool "h2 simple" true (Solution.role s Species.H 1 = Solution.Simple);
  check_bool "m1 simple" true (Solution.role s Species.M 0 = Solution.Simple);
  check_bool "m2 multiple" true (Solution.role s Species.M 1 = Solution.Multiple)

let test_overlapping_sites_rejected () =
  let inst = paper () in
  let m1 = Cmatch.full inst ~full_side:Species.M 0 ~other_frag:0 ~other_site:(Site.make 0 1) in
  let m2 = Cmatch.full inst ~full_side:Species.M 1 ~other_frag:0 ~other_site:(Site.make 1 2) in
  check_bool "overlap detected" true (Result.is_error (Solution.of_matches inst [ m1; m2 ]))

let test_border_cycle_rejected () =
  (* Two fragments joined by two border matches (head-head and tail-tail)
     would form a cycle. *)
  let alphabet = Alphabet.of_names [ "a"; "b"; "x"; "y" ] in
  let sym = Alphabet.symbol_of_string alphabet in
  let h = Fragment.make "h" [| sym "a"; sym "b" |] in
  let m = Fragment.make "m" [| sym "x"; sym "y" |] in
  let sigma = Scoring.of_list [ (sym "a", sym "y", 1.0); (sym "b", sym "x", 1.0) ] in
  let inst = Instance.make ~alphabet ~h:[ h ] ~m:[ m ] ~sigma in
  let b1 = Cmatch.border inst ~h_frag:0 ~h_site:(Site.make 0 0) ~m_frag:0 ~m_site:(Site.make 1 1) in
  let b2 = Cmatch.border inst ~h_frag:0 ~h_site:(Site.make 1 1) ~m_frag:0 ~m_site:(Site.make 0 0) in
  match (b1, b2) with
  | Some b1, Some b2 ->
      check_bool "cycle rejected" true
        (Result.is_error (Solution.of_matches inst [ b1; b2 ]))
  | _ -> Alcotest.fail "border construction failed"

let test_stale_score_rejected () =
  let inst = paper () in
  let m = Cmatch.full inst ~full_side:Species.H 1 ~other_frag:0 ~other_site:(Site.make 1 1) in
  let tampered = { m with Cmatch.score = 99.0 } in
  check_bool "stale score rejected" true
    (Result.is_error (Solution.of_matches inst [ tampered ]))

let test_free_sites_and_hidden () =
  let inst = paper () in
  let s = fig5_solution inst in
  (* h1 is fully occupied: (0,1) and (2,2). *)
  check_int "h1 free" 0 (List.length (Solution.free_sites s Species.H 0));
  (* Def 5 hiding is strict on both ends: (1,1) inside the site (0,1) is
     contained but not hidden. *)
  check_bool "contained is not hidden" false (Solution.is_hidden s Species.H 0 (Site.make 1 1));
  (* m2's site (1,1) is occupied; (0,0) border used; nothing free. *)
  check_int "m2 free" 0 (List.length (Solution.free_sites s Species.M 1));
  let empty = Solution.empty inst in
  check_int "everything free" 1 (List.length (Solution.free_sites empty Species.H 0));
  check_bool "nothing hidden in empty" false
    (Solution.is_hidden empty Species.H 0 (Site.make 1 1))

let test_contribution () =
  let inst = paper () in
  let s = fig5_solution inst in
  check_float "Cb(h1)" 9.0 (Solution.contribution s Species.H 0);
  check_float "Cb(m2)" 7.0 (Solution.contribution s Species.M 1);
  check_float "Cb sums to score per side" (Solution.score s)
    (Solution.contribution s Species.H 0 +. Solution.contribution s Species.H 1)

let test_prepare_detaches_simple () =
  let inst = paper () in
  let s = fig5_solution inst in
  (* Preparing h2's full site detaches h2 from m2 and frees m2(1,1). *)
  match Solution.prepare s Species.H 1 (Site.make 0 0) with
  | None -> Alcotest.fail "should be preparable"
  | Some (s', freed) ->
      check_int "one match gone" 2 (Solution.size s');
      check_int "one freed site" 1 (List.length freed);
      let f = List.hd freed in
      check_bool "freed on m2" true (f.Solution.side = Species.M && f.Solution.frag = 1);
      check_bool "freed site is (1,1)" true (Site.equal f.Solution.site (Site.make 1 1))

let test_prepare_restricts_host () =
  let inst = paper () in
  let s = fig5_solution inst in
  (* Preparing h1(1,2): m1's hosted site (0,1) overlaps at 1 -> restricted
     to (0,0); the border at (2,2) is inside the prepared region -> removed
     with its partner site orphaned. *)
  match Solution.prepare s Species.H 0 (Site.make 1 2) with
  | None -> Alcotest.fail "not hidden"
  | Some (s', freed) ->
      check_bool "still valid" true (Result.is_ok (Solution.validate s'));
      let m1_matches = Solution.matches_on s' Species.H 0 in
      check_int "one remaining on h1" 1 (List.length m1_matches);
      let remaining = List.hd m1_matches in
      check_bool "restricted to (0,0)" true
        (Site.equal (Cmatch.site_of remaining Species.H) (Site.make 0 0));
      check_float "restricted score is σ(a,s)" 4.0 remaining.Cmatch.score;
      check_int "orphan reported" 1 (List.length freed)

let hidden_setup () =
  (* Plug m1 into h1's span (0,2): h1(1,1) is then strictly inside an
     occupied site, i.e. hidden. *)
  let inst = paper () in
  let m = Cmatch.full inst ~full_side:Species.M 0 ~other_frag:0 ~other_site:(Site.make 0 2) in
  (inst, Solution.add_exn (Solution.empty inst) m)

let test_hidden_strict () =
  let _, s = hidden_setup () in
  check_bool "strictly inside is hidden" true (Solution.is_hidden s Species.H 0 (Site.make 1 1));
  check_bool "sharing an end is not hidden" false
    (Solution.is_hidden s Species.H 0 (Site.make 0 1))

let test_prepare_hidden_fails () =
  let _, s = hidden_setup () in
  check_bool "hidden site not preparable" true
    (Solution.prepare s Species.H 0 (Site.make 1 1) = None)

let test_add_remove_roundtrip () =
  let inst = paper () in
  let m = Cmatch.full inst ~full_side:Species.H 1 ~other_frag:0 ~other_site:(Site.make 1 1) in
  let s = Solution.add_exn (Solution.empty inst) m in
  check_int "added" 1 (Solution.size s);
  let s = Solution.remove s m in
  check_int "removed" 0 (Solution.size s)

(* ------------------------------------------------------------------ *)
(* Conjecture                                                           *)

let test_conjecture_of_fig5 () =
  let inst = paper () in
  let s = fig5_solution inst in
  let c = Conjecture.of_solution_exn s in
  check_bool "structurally valid" true (Result.is_ok (Conjecture.check inst c));
  check_float "score equals match total" (Solution.score s) (Conjecture.score inst c)

let test_conjecture_empty_solution () =
  let inst = paper () in
  let c = Conjecture.of_solution_exn (Solution.empty inst) in
  check_bool "valid" true (Result.is_ok (Conjecture.check inst c));
  check_float "score 0" 0.0 (Conjecture.score inst c);
  check_int "all h fragments placed" 2 (List.length c.Conjecture.h_order)

let test_conjecture_cyclic_solution () =
  (* Regression: a cyclic border-match chain used to crash layout emission
     with [assert false]; it must now surface as a typed error.  The cycle
     h1 –e1– m1 –e2– h2 –e3– m2 –e4– h1 cannot be produced through
     [Solution.of_matches] (validation rejects it), so it is injected with
     the unchecked constructor. *)
  let inst =
    Instance.of_text
      "H h1: a b\nH h2: c d\nM m1: s t\nM m2: u v\nS a v 1\nS b s 1\nS t c 1\nS d u 1\n"
  in
  let border h_frag h_site m_frag m_site =
    match Cmatch.border inst ~h_frag ~h_site ~m_frag ~m_site with
    | Some b -> b
    | None -> Alcotest.fail "border construction failed"
  in
  let e1 = border 0 (Site.make 1 1) 0 (Site.make 0 0) in
  let e2 = border 1 (Site.make 0 0) 0 (Site.make 1 1) in
  let e3 = border 1 (Site.make 1 1) 1 (Site.make 0 0) in
  let e4 = border 0 (Site.make 0 0) 1 (Site.make 1 1) in
  let cyclic = Solution.unchecked_of_matches inst [ e1; e2; e3; e4 ] in
  (* The validator already refuses the cycle... *)
  check_bool "validate rejects the cycle" true
    (Result.is_error (Solution.validate cyclic));
  (* ...and layout emission reports it as data instead of crashing. *)
  (match Conjecture.of_solution cyclic with
  | Ok _ -> Alcotest.fail "cyclic solution produced a conjecture"
  | Error (Conjecture.Invalid_solution msg) ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
        at 0
      in
      check_bool "mentions the cycle" true (contains msg "cycle"));
  Alcotest.check_raises "exn variant raises Invalid_argument"
    (Invalid_argument
       "Conjecture.of_solution: border matches form a cycle through fragment H/0")
    (fun () -> ignore (Conjecture.of_solution_exn cyclic))

let random_algorithm_solution seed =
  (* Random instances solved by greedy and by CSR_Improve give a varied
     supply of structurally interesting solutions. *)
  let rng = Fsa_util.Rng.create seed in
  let inst =
    Instance.random_planted rng ~regions:8
      ~h_fragments:(1 + Fsa_util.Rng.int rng 3)
      ~m_fragments:(1 + Fsa_util.Rng.int rng 3)
      ~inversion_rate:0.3 ~noise_pairs:4
  in
  let sol =
    if Fsa_util.Rng.bool rng then Greedy.solve inst
    else fst (Csr_improve.solve inst)
  in
  (inst, sol)

let test_conjecture_score_equality_qcheck =
  QCheck.Test.make ~name:"conjecture pair realizes solution score (Remark 1)"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let inst, sol = random_algorithm_solution seed in
      let c = Conjecture.of_solution_exn sol in
      Result.is_ok (Conjecture.check inst c)
      && Float.abs (Conjecture.score inst c -. Solution.score sol) < 1e-6)

let test_conjecture_rows_equal_length_qcheck =
  QCheck.Test.make ~name:"conjecture rows always have equal length" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let _, sol = random_algorithm_solution seed in
      let c = Conjecture.of_solution_exn sol in
      Array.length c.Conjecture.h_row = Array.length c.Conjecture.m_row)

let test_layout_scoring () =
  let inst = paper () in
  (* Fig 4 layout: h = ⟨h1, h2ᴿ⟩, m = ⟨m1, m2⟩ scores 11. *)
  let hl = { Conjecture.order = [| 0; 1 |]; reversed = [| false; true |] } in
  let ml = Conjecture.identity_layout 2 in
  check_float "Fig 4 layout scores 11" 11.0 (Conjecture.score_of_layouts inst hl ml);
  (* Identity layouts leave b,t and the reversals unmatched. *)
  let hid = Conjecture.identity_layout 2 in
  check_float "identity layout" 9.0 (Conjecture.score_of_layouts inst hid ml)

let test_concat_word_reversal () =
  let inst = paper () in
  let l = { Conjecture.order = [| 1; 0 |]; reversed = [| true; false |] } in
  let w = Conjecture.concat_word inst Species.H l in
  check_int "total length" 4 (Array.length w);
  (* h2ᴿ = ⟨dᴿ⟩ comes first. *)
  check_bool "first symbol is dᴿ" true (Symbol.is_reversed w.(0))

let () =
  Alcotest.run "fsa_csr_model"
    [
      ( "instance",
        [
          Alcotest.test_case "paper example shape" `Quick test_paper_example_shape;
          Alcotest.test_case "paper example sigma" `Quick test_paper_example_sigma;
          Alcotest.test_case "text roundtrip" `Quick test_text_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_text_rejects_garbage;
          qtest test_random_planted_wellformed_qcheck;
          qtest test_random_uniform_wellformed_qcheck;
        ] );
      ( "cmatch",
        [
          Alcotest.test_case "full classify" `Quick test_full_match_classify;
          Alcotest.test_case "orientation choice" `Quick test_full_match_orientation_choice;
          Alcotest.test_case "m-side full" `Quick test_full_match_m_side;
          Alcotest.test_case "border geometry" `Quick test_border_geometry;
          Alcotest.test_case "equal shapes reversed" `Quick test_border_equal_shapes_reversed;
          Alcotest.test_case "full site not border" `Quick test_border_rejects_full_site;
          Alcotest.test_case "bad orientation rejected" `Quick test_classify_rejects_bad_orientation;
          Alcotest.test_case "inner x inner rejected" `Quick test_classify_rejects_inner_inner;
          Alcotest.test_case "recompute score" `Quick test_recompute_score_orientation;
        ] );
      ( "solution",
        [
          Alcotest.test_case "Fig 5 score" `Quick test_fig5_solution_score;
          Alcotest.test_case "Fig 5 roles" `Quick test_fig5_roles;
          Alcotest.test_case "overlap rejected" `Quick test_overlapping_sites_rejected;
          Alcotest.test_case "cycle rejected" `Quick test_border_cycle_rejected;
          Alcotest.test_case "stale score rejected" `Quick test_stale_score_rejected;
          Alcotest.test_case "free sites & hidden" `Quick test_free_sites_and_hidden;
          Alcotest.test_case "contributions" `Quick test_contribution;
          Alcotest.test_case "prepare detaches simple" `Quick test_prepare_detaches_simple;
          Alcotest.test_case "prepare restricts host" `Quick test_prepare_restricts_host;
          Alcotest.test_case "hidden strictness" `Quick test_hidden_strict;
          Alcotest.test_case "prepare hidden fails" `Quick test_prepare_hidden_fails;
          Alcotest.test_case "add/remove" `Quick test_add_remove_roundtrip;
        ] );
      ( "conjecture",
        [
          Alcotest.test_case "Fig 5 conjecture" `Quick test_conjecture_of_fig5;
          Alcotest.test_case "empty solution" `Quick test_conjecture_empty_solution;
          Alcotest.test_case "cyclic solution is a typed error" `Quick
            test_conjecture_cyclic_solution;
          qtest test_conjecture_score_equality_qcheck;
          qtest test_conjecture_rows_equal_length_qcheck;
          Alcotest.test_case "layout scoring" `Quick test_layout_scoring;
          Alcotest.test_case "concat word reversal" `Quick test_concat_word_reversal;
        ] );
    ]
