(* Tests for Fsa_align: DP engines against the executable specification,
   traceback integrity, local/banded/affine variants, seed-and-extend. *)

open Fsa_seq
open Fsa_align

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let qtest t = QCheck_alcotest.to_alcotest ~verbose:false t

(* Random region-word generator with a shared random σ. *)
let word_gen =
  QCheck.(
    map
      (fun ids ->
        Array.of_list
          (List.map (fun (i, r) -> if r then Symbol.reversed i else Symbol.make i) ids))
      (list_of_size (Gen.int_range 0 7) (pair (int_bound 5) bool)))

let sigma_of_seed seed =
  let rng = Fsa_util.Rng.create seed in
  let t = Scoring.create () in
  for i = 0 to 5 do
    for j = 0 to 5 do
      if Fsa_util.Rng.bernoulli rng 0.5 then
        Scoring.set t (Symbol.make i)
          (if Fsa_util.Rng.bool rng then Symbol.make j else Symbol.reversed j)
          (Fsa_util.Rng.float rng 10.0 -. 2.0)
    done
  done;
  t

(* ------------------------------------------------------------------ *)
(* max-weight alignment (P_score)                                       *)

let test_pscore_matches_spec_qcheck =
  QCheck.Test.make ~name:"P_score DP equals memoized specification" ~count:300
    QCheck.(triple (int_bound 1000) word_gen word_gen)
    (fun (seed, a, b) ->
      let sigma = sigma_of_seed seed in
      let dp = Region_align.p_score sigma a b in
      let spec = Padded.best_pair_score_brute sigma a b in
      Float.abs (dp -. spec) < 1e-9)

let test_pscore_traceback_consistent_qcheck =
  QCheck.Test.make ~name:"traceback score equals reported score" ~count:300
    QCheck.(triple (int_bound 1000) word_gen word_gen)
    (fun (seed, a, b) ->
      let sigma = sigma_of_seed seed in
      let al = Region_align.p_alignment sigma a b in
      let recomputed =
        Pairwise.score_of_ops
          ~score:(fun i j -> Scoring.get sigma a.(i) b.(j))
          al.Pairwise.ops
      in
      Float.abs (al.Pairwise.score -. recomputed) < 1e-9)

let test_pscore_ops_cover_both_words_qcheck =
  QCheck.Test.make ~name:"alignment columns cover every element once" ~count:300
    QCheck.(triple (int_bound 1000) word_gen word_gen)
    (fun (seed, a, b) ->
      let sigma = sigma_of_seed seed in
      let al = Region_align.p_alignment sigma a b in
      let cover_a = Array.make (Array.length a) 0 in
      let cover_b = Array.make (Array.length b) 0 in
      List.iter
        (fun (op : Pairwise.op) ->
          match op with
          | Both (i, j) ->
              cover_a.(i) <- cover_a.(i) + 1;
              cover_b.(j) <- cover_b.(j) + 1
          | A_only i -> cover_a.(i) <- cover_a.(i) + 1
          | B_only j -> cover_b.(j) <- cover_b.(j) + 1)
        al.Pairwise.ops;
      Array.for_all (fun c -> c = 1) cover_a && Array.for_all (fun c -> c = 1) cover_b)

let test_pscore_reversal_invariance_qcheck =
  QCheck.Test.make ~name:"P_score(uᴿ, vᴿ) = P_score(u, v)" ~count:300
    QCheck.(triple (int_bound 1000) word_gen word_gen)
    (fun (seed, a, b) ->
      let sigma = sigma_of_seed seed in
      Float.abs
        (Region_align.p_score sigma a b
        -. Region_align.p_score sigma (Region_align.reverse_word a)
             (Region_align.reverse_word b))
      < 1e-9)

let test_pscore_nonnegative_qcheck =
  QCheck.Test.make ~name:"P_score is never negative" ~count:300
    QCheck.(triple (int_bound 1000) word_gen word_gen)
    (fun (seed, a, b) ->
      Region_align.p_score (sigma_of_seed seed) a b >= 0.0)

let test_pscore_known_crossing () =
  (* σ(0,0)=2, σ(1,1)=3: identical words take both; crossed words take one. *)
  let sigma =
    Scoring.of_list
      [ (Symbol.make 0, Symbol.make 0, 2.0); (Symbol.make 1, Symbol.make 1, 3.0) ]
  in
  let w01 = [| Symbol.make 0; Symbol.make 1 |] in
  let w10 = [| Symbol.make 1; Symbol.make 0 |] in
  check_float "parallel" 5.0 (Region_align.p_score sigma w01 w01);
  check_float "crossing" 3.0 (Region_align.p_score sigma w01 w10)

let test_ms_full_orientation () =
  (* σ(0, 1ᴿ) = 4: matching ⟨0⟩ against ⟨1⟩ needs the reversal. *)
  let sigma = Scoring.of_list [ (Symbol.make 0, Symbol.reversed 1, 4.0) ] in
  let score, reversed = Region_align.ms_full sigma [| Symbol.make 0 |] [| Symbol.make 1 |] in
  check_float "score" 4.0 score;
  check_bool "reversed orientation chosen" true reversed;
  (* Ties prefer forward. *)
  let sigma2 = Scoring.of_list [ (Symbol.make 0, Symbol.make 1, 4.0); (Symbol.make 0, Symbol.reversed 1, 4.0) ] in
  let _, rev2 = Region_align.ms_full sigma2 [| Symbol.make 0 |] [| Symbol.make 1 |] in
  check_bool "tie prefers forward" false rev2

let test_padded_pair_of_alignment_qcheck =
  QCheck.Test.make ~name:"padded pair realizes the alignment score" ~count:200
    QCheck.(triple (int_bound 1000) word_gen word_gen)
    (fun (seed, a, b) ->
      let sigma = sigma_of_seed seed in
      let al = Region_align.p_alignment sigma a b in
      let u, v = Region_align.padded_pair_of_alignment a b al in
      Padded.is_padding_of u a && Padded.is_padding_of v b
      && Float.abs (Padded.score sigma u v -. al.Pairwise.score) < 1e-9)

(* ------------------------------------------------------------------ *)
(* DNA global / local / banded / affine                                 *)

let test_nw_identical () =
  let d = Dna.of_string "ACGTACGT" in
  let al = Dna_align.global d d in
  check_float "perfect score" 8.0 al.Pairwise.score

let test_nw_gap_penalty () =
  let a = Dna.of_string "ACGT" and b = Dna.of_string "AC" in
  let al = Dna_align.global a b in
  (* 2 matches, 2 gaps at 1.5 *)
  check_float "score" (2.0 -. 3.0) al.Pairwise.score

let test_nw_substitution () =
  let a = Dna.of_string "ACGT" and b = Dna.of_string "AGGT" in
  let al = Dna_align.global a b in
  check_float "one mismatch" 2.0 al.Pairwise.score

let test_sw_finds_island () =
  (* A strong common core flanked by noise. *)
  let a = Dna.of_string ("TTTTTTTT" ^ "ACGTACGTACGT" ^ "GGGG") in
  let b = Dna.of_string ("CCCC" ^ "ACGTACGTACGT" ^ "AAAAAA") in
  let l = Dna_align.local a b in
  check_bool "score at least core" true (l.Pairwise.alignment.Pairwise.score >= 12.0);
  check_int "a core start" 8 l.Pairwise.a_lo;
  check_int "b core start" 4 l.Pairwise.b_lo

let test_sw_empty_on_disjoint () =
  let a = Dna.of_string "AAAA" and b = Dna.of_string "GGGG" in
  let l = Dna_align.local ~params:{ Dna_align.default with mismatch = -2.0 } a b in
  check_float "no positive local" 0.0 l.Pairwise.alignment.Pairwise.score

let test_banded_equals_global_for_wide_band_qcheck =
  QCheck.Test.make ~name:"banded = full NW when band is wide" ~count:100
    QCheck.(pair (int_range 1 30) (int_range 1 30))
    (fun (la, lb) ->
      let rng = Fsa_util.Rng.create (la + (lb * 100)) in
      let a = Dna.random rng la and b = Dna.random rng lb in
      let full = Dna_align.global a b in
      let banded = Dna_align.banded_global ~band:(la + lb) a b in
      Float.abs (full.Pairwise.score -. banded.Pairwise.score) < 1e-9)

let test_banded_narrow_band_similar_sequences () =
  let rng = Fsa_util.Rng.create 33 in
  let a = Dna.random rng 200 in
  let b = Dna.point_mutate rng ~rate:0.05 a in
  let full = Dna_align.global a b in
  let banded = Dna_align.banded_global ~band:8 a b in
  check_float "narrow band exact on similar" full.Pairwise.score banded.Pairwise.score

let test_affine_prefers_one_long_gap () =
  (* With affine costs, deleting a block should use one gap open. *)
  let score _ _ = 1.0 in
  let al =
    Pairwise.global_affine ~score ~gap_open:5.0 ~gap_extend:0.5 ~la:10 ~lb:6
  in
  (* 6 matches, one gap of length 4: 6 - 5 - 2 = -1 *)
  check_float "affine cost" (-1.0) al.Pairwise.score

let test_affine_equals_linear_when_open_zero_qcheck =
  QCheck.Test.make ~name:"affine(open=0) = linear NW" ~count:100
    QCheck.(pair (int_range 1 12) (int_range 1 12))
    (fun (la, lb) ->
      let rng = Fsa_util.Rng.create (la * 31 + lb) in
      let a = Dna.random rng la and b = Dna.random rng lb in
      let p = Dna_align.default in
      let score i j = if Dna.get a i = Dna.get b j then p.Dna_align.match_score else p.Dna_align.mismatch in
      let lin = Pairwise.global ~score ~gap:p.Dna_align.gap ~la ~lb in
      let aff = Pairwise.global_affine ~score ~gap_open:0.0 ~gap_extend:p.Dna_align.gap ~la ~lb in
      Float.abs (lin.Pairwise.score -. aff.Pairwise.score) < 1e-9)

let test_affine_traceback_consistent_qcheck =
  QCheck.Test.make ~name:"affine traceback covers both words" ~count:100
    QCheck.(pair (int_range 1 12) (int_range 1 12))
    (fun (la, lb) ->
      let rng = Fsa_util.Rng.create (la * 77 + lb) in
      let a = Dna.random rng la and b = Dna.random rng lb in
      let score i j = if Dna.get a i = Dna.get b j then 1.0 else -1.0 in
      let al = Pairwise.global_affine ~score ~gap_open:2.0 ~gap_extend:0.5 ~la ~lb in
      let ca = Array.make la 0 and cb = Array.make lb 0 in
      List.iter
        (fun (op : Pairwise.op) ->
          match op with
          | Both (i, j) -> ca.(i) <- ca.(i) + 1; cb.(j) <- cb.(j) + 1
          | A_only i -> ca.(i) <- ca.(i) + 1
          | B_only j -> cb.(j) <- cb.(j) + 1)
        al.Pairwise.ops;
      Array.for_all (fun c -> c = 1) ca && Array.for_all (fun c -> c = 1) cb)

(* ------------------------------------------------------------------ *)
(* Adaptive banded = full NW, bit for bit.  The certificate in
   Pairwise.adaptive_global promises score- AND ops-identical alignments;
   exercise the certified-accept, widening, and cap-fallback branches. *)

(* Pairs with planted diagonal drift: a mutated copy with random indels so
   narrow bands genuinely fail and the widening loop has work to do. *)
let drifted_pair seed =
  let rng = Fsa_util.Rng.create seed in
  let la = 1 + Fsa_util.Rng.int rng 120 in
  let a = Dna.random rng la in
  match Fsa_util.Rng.int rng 3 with
  | 0 -> (a, Dna.random rng (1 + Fsa_util.Rng.int rng 120))
  | 1 -> (a, Dna.point_mutate rng ~rate:0.1 a)
  | _ ->
      (* Cut-and-splice: delete a chunk and insert random bases elsewhere. *)
      let cut_lo = Fsa_util.Rng.int rng la in
      let cut_len = Fsa_util.Rng.int rng (la - cut_lo + 1) in
      let ins = Dna.random rng (Fsa_util.Rng.int rng 40) in
      let b =
        Dna.concat
          [
            Dna.sub a ~pos:0 ~len:cut_lo;
            ins;
            Dna.sub a ~pos:(cut_lo + cut_len) ~len:(la - cut_lo - cut_len);
          ]
      in
      (a, Dna.point_mutate rng ~rate:0.05 b)

let adaptive_matches_full ?band ?band_cap seed =
  let a, b = drifted_pair seed in
  if Dna.length b = 0 then true
  else
    let full = Dna_align.global a b in
    let ad = Dna_align.adaptive_global ?band ?band_cap a b in
    Int64.bits_of_float full.Pairwise.score
    = Int64.bits_of_float ad.Pairwise.result.Pairwise.score
    && full.Pairwise.ops = ad.Pairwise.result.Pairwise.ops

let test_adaptive_identical_qcheck =
  QCheck.Test.make ~name:"adaptive banded = full NW (score and ops)" ~count:400
    QCheck.(int_bound 1_000_000)
    (fun seed -> adaptive_matches_full seed)

let test_adaptive_identical_tiny_band_qcheck =
  QCheck.Test.make ~name:"adaptive banded = full NW from band 1 (widening)"
    ~count:400
    QCheck.(int_bound 1_000_000)
    (fun seed -> adaptive_matches_full ~band:1 seed)

let test_adaptive_identical_tiny_cap_qcheck =
  QCheck.Test.make ~name:"adaptive banded = full NW with cap 2 (fallback)"
    ~count:400
    QCheck.(int_bound 1_000_000)
    (fun seed -> adaptive_matches_full ~band:1 ~band_cap:2 seed)

let test_adaptive_branches_covered () =
  (* Divergent pair, band 1: the certificate cannot hold, so the engine
     widens; with a tiny cap it must fall back to the full kernel. *)
  let rng = Fsa_util.Rng.create 91 in
  let a = Dna.random rng 200 and b = Dna.random rng 150 in
  let reg = Fsa_obs.Registry.create () in
  let widened, capped =
    Fsa_obs.Runtime.with_observation ~registry:reg (fun () ->
        let w = Dna_align.adaptive_global ~band:1 a b in
        let c = Dna_align.adaptive_global ~band:1 ~band_cap:4 a b in
        (w, c))
  in
  check_bool "widened at least once" true (widened.Pairwise.widenings > 0);
  check_bool "cap forces fallback" true capped.Pairwise.fell_back;
  check_bool "fallback reports full band" true
    (capped.Pairwise.band_used = 200);
  let c name =
    match Fsa_obs.Registry.counter_value reg name with Some v -> v | None -> 0.0
  in
  check_bool "band.widenings counted" true (c "band.widenings" > 0.0);
  check_bool "band.fallbacks counted" true (c "band.fallbacks" > 0.0)

let test_adaptive_similar_stays_narrow () =
  (* 5% point mutations, no indels: the certificate should accept long
     before the band covers the matrix. *)
  let rng = Fsa_util.Rng.create 92 in
  let a = Dna.random rng 400 in
  let b = Dna.point_mutate rng ~rate:0.05 a in
  let ad = Dna_align.adaptive_global a b in
  check_bool "no fallback" true (not ad.Pairwise.fell_back);
  check_bool "band stayed narrow" true (ad.Pairwise.band_used < 400);
  let full = Dna_align.global a b in
  check_float "score equal" full.Pairwise.score ad.Pairwise.result.Pairwise.score

let test_xdrop_stops () =
  (* matches then a long run of mismatches: extension must stop early. *)
  let score i j = if i = j && i < 5 then 1.0 else -1.0 in
  let best, len = Pairwise.xdrop_extend ~score ~x_drop:2.0 ~la:100 ~lb:100 ~a_start:0 ~b_start:0 in
  check_float "best is the 5 matches" 5.0 best;
  check_int "length" 5 len

let test_xdrop_empty () =
  let score _ _ = -1.0 in
  let best, len = Pairwise.xdrop_extend ~score ~x_drop:1.5 ~la:10 ~lb:10 ~a_start:0 ~b_start:0 in
  check_float "best" 0.0 best;
  check_int "len" 0 len

(* ------------------------------------------------------------------ *)
(* Seed and extend                                                      *)

let test_index_lookup () =
  let t = Dna.of_string "ACGTACGT" in
  let idx = Seed.build_index ~k:4 t in
  check_int "k" 4 (Seed.index_k idx);
  let kmer = Dna.pack_kmer t ~pos:0 ~k:4 in
  Alcotest.(check (array int)) "positions of ACGT" [| 0; 4 |] (Seed.lookup idx kmer)

let test_index_max_occ () =
  let t = Dna.of_string (String.concat "" (List.init 50 (fun _ -> "A"))) in
  let idx = Seed.build_index ~max_occ:8 ~k:4 t in
  let kmer = Dna.pack_kmer t ~pos:0 ~k:4 in
  check_int "repeat kmer dropped" 0 (Array.length (Seed.lookup idx kmer))

let test_anchor_forward () =
  let rng = Fsa_util.Rng.create 44 in
  let core = Dna.random rng 60 in
  let target = Dna.concat [ Dna.random rng 40; core; Dna.random rng 40 ] in
  let query = Dna.concat [ Dna.random rng 25; core; Dna.random rng 10 ] in
  let idx = Seed.build_index ~k:12 target in
  let anchors = Seed.anchors ~min_score:30.0 idx ~target ~query in
  check_bool "found" true (anchors <> []);
  let a = List.hd anchors in
  check_bool "forward" true a.Seed.forward;
  check_bool "covers the core in target" true (a.Seed.t_lo <= 45 && a.Seed.t_hi >= 90);
  check_bool "covers the core in query" true (a.Seed.q_lo <= 30 && a.Seed.q_hi >= 75)

let test_anchor_reverse_strand () =
  let rng = Fsa_util.Rng.create 45 in
  let core = Dna.random rng 60 in
  let target = Dna.concat [ Dna.random rng 30; core; Dna.random rng 30 ] in
  let query = Dna.concat [ Dna.random rng 20; Dna.reverse_complement core; Dna.random rng 20 ] in
  let idx = Seed.build_index ~k:12 target in
  let anchors = Seed.anchors ~min_score:30.0 idx ~target ~query in
  check_bool "found" true (anchors <> []);
  let a = List.hd anchors in
  check_bool "reverse strand" false a.Seed.forward;
  (* Query coordinates must be reported on the forward query. *)
  check_bool "q range inside query" true (a.Seed.q_lo >= 0 && a.Seed.q_hi < Dna.length query);
  check_bool "q range covers the planted copy" true (a.Seed.q_lo <= 25 && a.Seed.q_hi >= 75)

let test_anchor_with_mutations () =
  let rng = Fsa_util.Rng.create 46 in
  let core = Dna.random rng 100 in
  let target = Dna.concat [ Dna.random rng 50; core; Dna.random rng 50 ] in
  let mutated = Dna.point_mutate rng ~rate:0.04 core in
  let query = Dna.concat [ Dna.random rng 30; mutated; Dna.random rng 30 ] in
  let idx = Seed.build_index ~k:12 target in
  let anchors = Seed.anchors ~min_score:25.0 idx ~target ~query in
  check_bool "mutated homolog still found" true (anchors <> [])

let test_anchor_none_on_random () =
  let rng = Fsa_util.Rng.create 47 in
  let target = Dna.random rng 300 in
  let query = Dna.random rng 300 in
  let idx = Seed.build_index ~k:14 target in
  let anchors = Seed.anchors ~min_score:30.0 idx ~target ~query in
  check_bool "unrelated sequences give no strong anchors" true (List.length anchors = 0)

let test_filter_dominated () =
  let mk score (t_lo, t_hi) (q_lo, q_hi) =
    { Seed.t_lo; t_hi; q_lo; q_hi; forward = true; score }
  in
  let big = mk 50.0 (0, 100) (0, 100) in
  let inside = mk 10.0 (10, 20) (10, 20) in
  let outside = mk 10.0 (150, 160) (150, 160) in
  let kept = Seed.filter_dominated [ big; inside; outside ] in
  check_int "dominated dropped" 2 (List.length kept);
  check_bool "big kept" true (List.mem big kept);
  check_bool "outside kept" true (List.mem outside kept)

(* Reference for the sweep: the original quadratic fold, verbatim. *)
let filter_dominated_quadratic anchors =
  let contains (lo1, hi1) (lo2, hi2) = lo1 <= lo2 && hi2 <= hi1 in
  let keep kept (a : Seed.anchor) =
    let dominated =
      List.exists
        (fun (b : Seed.anchor) ->
          contains (b.t_lo, b.t_hi) (a.t_lo, a.t_hi)
          && contains (b.q_lo, b.q_hi) (a.q_lo, a.q_hi))
        kept
    in
    if dominated then kept else a :: kept
  in
  List.rev (List.fold_left keep [] anchors)

let random_anchor_set seed =
  (* Small coordinate universe so containment chains actually occur. *)
  let rng = Fsa_util.Rng.create seed in
  let n = Fsa_util.Rng.int rng 60 in
  List.init n (fun i ->
      let iv () =
        let lo = Fsa_util.Rng.int rng 40 in
        (lo, lo + Fsa_util.Rng.int rng 25)
      in
      let t_lo, t_hi = iv () and q_lo, q_hi = iv () in
      {
        Seed.t_lo;
        t_hi;
        q_lo;
        q_hi;
        forward = Fsa_util.Rng.int rng 2 = 0;
        score = float_of_int (100 - i);
      })

let test_filter_dominated_sweep_qcheck =
  QCheck.Test.make ~name:"filter_dominated sweep = quadratic reference"
    ~count:500
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let anchors = random_anchor_set seed in
      Seed.filter_dominated anchors = filter_dominated_quadratic anchors)

(* ------------------------------------------------------------------ *)
(* Chaining and stitching                                               *)

(* A target/query pair sharing several mutated blocks, some reversed, so
   seeding yields anchors on both strands with chainable structure. *)
let homologous_pair seed =
  let rng = Fsa_util.Rng.create seed in
  let block () = Dna.random rng (60 + Fsa_util.Rng.int rng 80) in
  let blocks = List.init (2 + Fsa_util.Rng.int rng 3) (fun _ -> block ()) in
  let spacer () = Dna.random rng (Fsa_util.Rng.int rng 80) in
  let target =
    Dna.concat
      (List.concat_map (fun b -> [ spacer (); b ]) blocks @ [ spacer () ])
  in
  let mutate b =
    let b = Dna.point_mutate rng ~rate:0.04 b in
    if Fsa_util.Rng.int rng 4 = 0 then Dna.reverse_complement b else b
  in
  let query =
    Dna.concat
      (List.concat_map (fun b -> [ spacer (); mutate b ]) blocks @ [ spacer () ])
  in
  (target, query)

let anchors_of_pair ?(min_score = 20.0) (target, query) =
  let idx = Seed.build_index ~k:12 target in
  Seed.filter_dominated (Seed.anchors ~min_score idx ~target ~query)

let strand_q_key fwd (a : Seed.anchor) = if fwd then a.q_lo else -a.q_hi
let strand_q_key_hi fwd (a : Seed.anchor) = if fwd then a.q_hi else -a.q_lo

let chain_invariants ~max_gap (c : Chain.t) =
  let n = Array.length c.anchors in
  let ok = ref (n > 0) in
  Array.iter (fun (a : Seed.anchor) -> if a.forward <> c.forward then ok := false) c.anchors;
  for i = 1 to n - 1 do
    let p = c.anchors.(i - 1) and a = c.anchors.(i) in
    if not (p.t_lo < a.t_lo && p.t_hi < a.t_hi) then ok := false;
    if not (strand_q_key c.forward p < strand_q_key c.forward a) then ok := false;
    if not (strand_q_key_hi c.forward p < strand_q_key_hi c.forward a) then
      ok := false;
    if a.t_lo - p.t_hi - 1 > max_gap then ok := false;
    if strand_q_key c.forward a - strand_q_key_hi c.forward p - 1 > max_gap then
      ok := false
  done;
  Array.iter
    (fun (a : Seed.anchor) ->
      if a.t_lo < c.t_lo || a.t_hi > c.t_hi then ok := false;
      if a.q_lo < c.q_lo || a.q_hi > c.q_hi then ok := false)
    c.anchors;
  !ok

let test_chain_invariants_qcheck =
  QCheck.Test.make ~name:"chains are colinear, bounded, and partition anchors"
    ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let pair = homologous_pair seed in
      let anchors = anchors_of_pair pair in
      let max_gap = 300 in
      let cs = Chain.chains ~max_gap anchors in
      List.for_all (chain_invariants ~max_gap) cs
      && List.fold_left (fun n (c : Chain.t) -> n + Array.length c.anchors) 0 cs
         = List.length anchors)

let test_chain_stitch_kernels_agree_qcheck =
  QCheck.Test.make
    ~name:"stitch adaptive kernel = full kernel (score bit-identical)"
    ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ((target, query) as pair) = homologous_pair seed in
      let cs = Chain.chains (anchors_of_pair pair) in
      List.for_all
        (fun c ->
          let a = Chain.stitch ~band:4 ~target ~query c in
          let f = Chain.stitch ~gap_kernel:`Full ~target ~query c in
          Int64.bits_of_float a.Chain.score = Int64.bits_of_float f.Chain.score)
        cs)

let test_chain_joins_blocks () =
  (* Two conserved blocks 40 bases apart on both sequences must land in one
     chain: the gap is far under max_gap and the blocks are colinear. *)
  let rng = Fsa_util.Rng.create 77 in
  let a = Dna.random rng 120 and b = Dna.random rng 120 in
  let target = Dna.concat [ Dna.random rng 50; a; Dna.random rng 40; b ] in
  let query =
    Dna.concat
      [
        Dna.random rng 30;
        Dna.point_mutate rng ~rate:0.03 a;
        Dna.random rng 40;
        Dna.point_mutate rng ~rate:0.03 b;
        Dna.random rng 30;
      ]
  in
  let cs = Chain.chains (anchors_of_pair (target, query)) in
  check_bool "some chain" true (cs <> []);
  let best = List.hd cs in
  check_bool "top chain spans both blocks" true
    (best.Chain.t_lo < 170 && best.Chain.t_hi >= 210);
  let stitched = Chain.stitch ~target ~query best in
  check_bool "stitched score strongly positive" true (stitched.Chain.score > 150.0)

let () =
  Alcotest.run "fsa_align"
    [
      ( "p_score",
        [
          qtest test_pscore_matches_spec_qcheck;
          qtest test_pscore_traceback_consistent_qcheck;
          qtest test_pscore_ops_cover_both_words_qcheck;
          qtest test_pscore_reversal_invariance_qcheck;
          qtest test_pscore_nonnegative_qcheck;
          Alcotest.test_case "crossing pairs" `Quick test_pscore_known_crossing;
          Alcotest.test_case "ms_full orientation" `Quick test_ms_full_orientation;
          qtest test_padded_pair_of_alignment_qcheck;
        ] );
      ( "dna_global_local",
        [
          Alcotest.test_case "identical" `Quick test_nw_identical;
          Alcotest.test_case "gap penalty" `Quick test_nw_gap_penalty;
          Alcotest.test_case "substitution" `Quick test_nw_substitution;
          Alcotest.test_case "local island" `Quick test_sw_finds_island;
          Alcotest.test_case "local empty" `Quick test_sw_empty_on_disjoint;
          qtest test_banded_equals_global_for_wide_band_qcheck;
          Alcotest.test_case "narrow band on similar" `Quick test_banded_narrow_band_similar_sequences;
          Alcotest.test_case "affine long gap" `Quick test_affine_prefers_one_long_gap;
          qtest test_affine_equals_linear_when_open_zero_qcheck;
          qtest test_affine_traceback_consistent_qcheck;
          qtest test_adaptive_identical_qcheck;
          qtest test_adaptive_identical_tiny_band_qcheck;
          qtest test_adaptive_identical_tiny_cap_qcheck;
          Alcotest.test_case "adaptive branches covered" `Quick
            test_adaptive_branches_covered;
          Alcotest.test_case "adaptive similar stays narrow" `Quick
            test_adaptive_similar_stays_narrow;
          Alcotest.test_case "xdrop stops" `Quick test_xdrop_stops;
          Alcotest.test_case "xdrop empty" `Quick test_xdrop_empty;
        ] );
      ( "seed",
        [
          Alcotest.test_case "index lookup" `Quick test_index_lookup;
          Alcotest.test_case "repeat filtering" `Quick test_index_max_occ;
          Alcotest.test_case "forward anchor" `Quick test_anchor_forward;
          Alcotest.test_case "reverse anchor" `Quick test_anchor_reverse_strand;
          Alcotest.test_case "mutated anchor" `Quick test_anchor_with_mutations;
          Alcotest.test_case "no anchors on noise" `Quick test_anchor_none_on_random;
          Alcotest.test_case "dominated filtering" `Quick test_filter_dominated;
          qtest test_filter_dominated_sweep_qcheck;
        ] );
      ( "chain",
        [
          qtest test_chain_invariants_qcheck;
          qtest test_chain_stitch_kernels_agree_qcheck;
          Alcotest.test_case "chain joins blocks" `Quick test_chain_joins_blocks;
        ] );
    ]
