(* Resource-budget tests: the cooperative checkpoint mechanics (sticky
   tripping, nesting, partial construction outside the budget) and the
   budgeted solver entry points — every exceeded budget must still return
   a valid solution, and an unlimited budget must change nothing. *)

open Fsa_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let validate_ok what sol =
  match Fsa_csr.Solution.validate sol with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: invalid partial solution: %s" what msg

let small_instance seed =
  let rng = Fsa_util.Rng.create seed in
  Fsa_csr.Instance.random_planted rng ~regions:8 ~h_fragments:4 ~m_fragments:4
    ~inversion_rate:0.2 ~noise_pairs:6

(* ------------------------------------------------------------------ *)
(* Checkpoint mechanics *)

let test_create_validation () =
  Alcotest.check_raises "negative probes"
    (Invalid_argument "Budget.create: negative probe budget") (fun () ->
      ignore (Budget.create ~probes:(-1) ()));
  Alcotest.check_raises "poll_every zero"
    (Invalid_argument "Budget.create: poll_every must be positive") (fun () ->
      ignore (Budget.create ~poll_every:0 ()));
  (* Regression: a NaN wall_s made [Clock.now () > deadline] always false —
     a silently unlimited budget; negative limits were accepted too. *)
  let rejects what f =
    match f () with
    | (_ : Budget.t) -> Alcotest.failf "%s accepted" what
    | exception Invalid_argument _ -> ()
  in
  rejects "NaN wall_s" (fun () -> Budget.create ~wall_s:Float.nan ());
  rejects "negative wall_s" (fun () -> Budget.create ~wall_s:(-1.0) ());
  rejects "NaN minor_words" (fun () -> Budget.create ~minor_words:Float.nan ());
  rejects "negative minor_words" (fun () -> Budget.create ~minor_words:(-5.0) ());
  (* Zero is a legitimate (instantly tripping) limit, not a misconfiguration. *)
  ignore (Budget.create ~wall_s:0.0 ~minor_words:0.0 ())

(* Regression: [check] used to enforce the budget *before* ticking hooks,
   so once a budget tripped (sticky re-raise) the sampler/series hooks
   were starved for the rest of the run. *)
let test_hooks_tick_when_budget_tripped () =
  let ticks = ref 0 in
  let h = Budget.on_tick (fun () -> incr ticks) in
  Fun.protect ~finally:(fun () -> Budget.remove_hook h) @@ fun () ->
  let b = Budget.create ~probes:0 () in
  (match Budget.run b ~partial:(fun () -> ()) (fun () ->
       Budget.check ();
       Alcotest.fail "zero-probe budget did not trip")
   with
  | Ok () -> Alcotest.fail "unreachable"
  | Error (`Budget_exceeded ((), `Probes)) -> ()
  | Error (`Budget_exceeded ((), _)) -> Alcotest.fail "wrong reason");
  check_int "hook ticked on the tripping check" 1 !ticks;
  (* Sticky re-raises must keep ticking hooks too. *)
  (match Budget.run b ~partial:(fun () -> ()) (fun () -> Budget.check ()) with
  | Ok () -> Alcotest.fail "sticky budget did not re-trip"
  | Error (`Budget_exceeded ((), _)) -> ());
  check_int "hook ticked on the sticky re-raise" 2 !ticks

let test_hook_removes_itself_mid_tick () =
  let fired = ref 0 and witness = ref 0 in
  let self = ref None in
  let h1 =
    Budget.on_tick (fun () ->
        incr fired;
        match !self with Some id -> Budget.remove_hook id | None -> ())
  in
  self := Some h1;
  let h2 = Budget.on_tick (fun () -> incr witness) in
  Fun.protect ~finally:(fun () -> Budget.remove_hook h2) @@ fun () ->
  Budget.check ();
  Budget.check ();
  check_int "self-removing hook fired exactly once" 1 !fired;
  (* The hook registered after it keeps firing on the same ticks: removal
     mid-tick must not derail the in-flight iteration. *)
  check_int "later hook saw every tick" 2 !witness

let test_hook_registers_hook_mid_tick () =
  let parent_fired = ref 0 and child_fired = ref 0 in
  let child = ref None in
  let h =
    Budget.on_tick (fun () ->
        incr parent_fired;
        if !child = None then
          child := Some (Budget.on_tick (fun () -> incr child_fired)))
  in
  Fun.protect
    ~finally:(fun () ->
      Budget.remove_hook h;
      Option.iter Budget.remove_hook !child)
  @@ fun () ->
  Budget.check ();
  check_int "child not called on the registering tick" 0 !child_fired;
  Budget.check ();
  check_int "child called from the next tick" 1 !child_fired;
  check_int "parent called on both ticks" 2 !parent_fired

let test_zero_probe_budget_trips_first_check () =
  let b = Budget.create ~probes:0 () in
  (match Budget.run b ~partial:(fun () -> "partial") (fun () ->
       Budget.check ();
       "done")
   with
  | Ok _ -> Alcotest.fail "zero-probe budget did not trip"
  | Error (`Budget_exceeded (p, reason)) ->
      Alcotest.(check string) "partial payload" "partial" p;
      check_bool "probes reason" true (reason = `Probes));
  check_bool "sticky exceeded" true (Budget.exceeded b = Some `Probes)

let test_unlimited_budget_never_trips () =
  let b = Budget.create () in
  let r =
    Budget.run b ~partial:(fun () -> -1) (fun () ->
        for _ = 1 to 10_000 do
          Budget.check ()
        done;
        42)
  in
  check_bool "completed" true (r = Ok 42);
  check_int "all probes counted" 10_000 (Budget.probes b);
  check_bool "not exceeded" true (Budget.exceeded b = None)

let test_sticky_budget_re_trips_without_work () =
  let b = Budget.create ~probes:5 () in
  (match Budget.run b ~partial:(fun () -> ()) (fun () ->
       while true do
         Budget.check ()
       done)
   with
  | Ok () -> Alcotest.fail "unbounded loop completed?"
  | Error (`Budget_exceeded ((), `Probes)) -> ()
  | Error (`Budget_exceeded ((), _)) -> Alcotest.fail "wrong reason");
  let probes_after_trip = Budget.probes b in
  (* A second stage under the same budget must fall through immediately:
     the sticky re-raise fires before any probe is counted. *)
  let stage2_ran = ref false in
  (match Budget.run b ~partial:(fun () -> ()) (fun () ->
       Budget.check ();
       stage2_ran := true)
   with
  | Ok () -> Alcotest.fail "tripped budget allowed a second stage"
  | Error (`Budget_exceeded ((), `Probes)) -> ()
  | Error (`Budget_exceeded ((), _)) -> Alcotest.fail "wrong sticky reason");
  check_bool "second stage did no work" false !stage2_ran;
  check_int "no extra probes counted" probes_after_trip (Budget.probes b)

let test_partial_runs_outside_budget () =
  let b = Budget.create ~probes:0 () in
  (* [partial] itself calls the checkpoint; it must not re-trip because
     [run] uninstalls the budget before building the partial. *)
  match Budget.run b
      ~partial:(fun () ->
        Budget.check ();
        check_bool "budget uninstalled in partial" false (Budget.installed ());
        "safe")
      (fun () ->
        Budget.check ();
        "done")
  with
  | Ok _ -> Alcotest.fail "zero-probe budget did not trip"
  | Error (`Budget_exceeded (p, _)) -> Alcotest.(check string) "partial" "safe" p

let test_budgets_nest_innermost_wins () =
  let outer = Budget.create ~probes:1_000 () in
  let inner = Budget.create ~probes:3 () in
  let r =
    Budget.run outer ~partial:(fun () -> -1) (fun () ->
        Budget.check ();
        let inner_result =
          Budget.run inner ~partial:(fun () -> -2) (fun () ->
              while true do
                Budget.check ()
              done;
              0)
        in
        (* The outer budget is live again and untripped. *)
        Budget.check ();
        match inner_result with
        | Error (`Budget_exceeded (-2, `Probes)) -> 7
        | _ -> -3)
  in
  check_bool "outer completed despite inner trip" true (r = Ok 7);
  check_bool "outer untripped" true (Budget.exceeded outer = None);
  check_int "outer saw only its own probes" 2 (Budget.probes outer)

let test_value () =
  check_int "ok payload" 3 (Budget.value (Ok 3));
  check_int "partial payload" 4 (Budget.value (Error (`Budget_exceeded (4, `Probes))))

(* ------------------------------------------------------------------ *)
(* Budgeted solver entry points: exceeded => valid partial; unlimited =>
   identical to the plain solver. *)

let score = Fsa_csr.Solution.score

let test_greedy_budgeted () =
  let inst = small_instance 11 in
  (match Fsa_csr.Greedy.solve_budgeted (Budget.create ~probes:0 ()) inst with
  | Ok _ -> Alcotest.fail "zero-probe greedy completed"
  | Error (`Budget_exceeded (partial, _)) ->
      validate_ok "greedy" partial;
      check_float "nothing committed yet" 0.0 (score partial));
  match Fsa_csr.Greedy.solve_budgeted (Budget.create ()) inst with
  | Ok sol ->
      check_float "unlimited greedy unchanged" (score (Fsa_csr.Greedy.solve inst))
        (score sol)
  | Error _ -> Alcotest.fail "unlimited greedy tripped"

let test_four_approx_budgeted () =
  let inst = small_instance 42 in
  (match Fsa_csr.One_csr.four_approx_budgeted (Budget.create ~probes:0 ()) inst with
  | Ok _ -> Alcotest.fail "zero-probe four_approx completed"
  | Error (`Budget_exceeded (partial, _)) -> validate_ok "four_approx" partial);
  match Fsa_csr.One_csr.four_approx_budgeted (Budget.create ()) inst with
  | Ok sol ->
      check_float "unlimited four_approx unchanged"
        (score (Fsa_csr.One_csr.four_approx inst))
        (score sol)
  | Error _ -> Alcotest.fail "unlimited four_approx tripped"

(* A mid-sized probe budget on the side-H/side-M pair: the partial must be
   the best side completed so far, which is still a valid solution. *)
let test_four_approx_partial_mid_run () =
  let inst = small_instance 99 in
  let unlimited = Budget.create () in
  (match Fsa_csr.One_csr.four_approx_budgeted unlimited inst with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "unlimited run tripped");
  let total = Budget.probes unlimited in
  check_bool "instrumented loops probe" true (total > 0);
  (* Enough budget for roughly one side: tripping mid-run. *)
  match
    Fsa_csr.One_csr.four_approx_budgeted (Budget.create ~probes:(total / 2) ()) inst
  with
  | Ok _ -> () (* probe counts can shift with caching; completing is fine *)
  | Error (`Budget_exceeded (partial, _)) -> validate_ok "half-budget partial" partial

let test_csr_improve_budgeted () =
  let inst = small_instance 7 in
  (match Fsa_csr.Csr_improve.solve_budgeted (Budget.create ~probes:0 ()) inst with
  | Ok _ -> Alcotest.fail "zero-probe csr_improve completed"
  | Error (`Budget_exceeded ((partial, _stats), _)) ->
      validate_ok "csr_improve" partial);
  match Fsa_csr.Csr_improve.solve_budgeted (Budget.create ()) inst with
  | Ok (sol, _) ->
      check_float "unlimited csr_improve unchanged"
        (score (fst (Fsa_csr.Csr_improve.solve inst)))
        (score sol)
  | Error _ -> Alcotest.fail "unlimited csr_improve tripped"

let test_full_improve_budgeted () =
  let inst = small_instance 3 in
  (match Fsa_csr.Full_improve.solve_budgeted (Budget.create ~probes:0 ()) inst with
  | Ok _ -> Alcotest.fail "zero-probe full_improve completed"
  | Error (`Budget_exceeded ((partial, _), _)) -> validate_ok "full_improve" partial);
  match Fsa_csr.Full_improve.solve_budgeted (Budget.create ()) inst with
  | Ok (sol, _) ->
      check_float "unlimited full_improve unchanged"
        (score (fst (Fsa_csr.Full_improve.solve inst)))
        (score sol)
  | Error _ -> Alcotest.fail "unlimited full_improve tripped"

let tiny_instance () =
  let rng = Fsa_util.Rng.create 5 in
  Fsa_csr.Instance.random_planted rng ~regions:4 ~h_fragments:2 ~m_fragments:2
    ~inversion_rate:0.0 ~noise_pairs:2

let test_exact_budgeted () =
  let inst = tiny_instance () in
  (match Fsa_csr.Exact.solve_budgeted (Budget.create ~probes:0 ()) inst with
  | Ok _ -> Alcotest.fail "zero-probe exact completed"
  | Error (`Budget_exceeded ((s, _, _), _)) ->
      check_bool "nothing evaluated" true (s = Float.neg_infinity));
  match Fsa_csr.Exact.solve_budgeted (Budget.create ()) inst with
  | Ok (s, _, _) ->
      let s', _, _ = Fsa_csr.Exact.solve_exn inst in
      check_float "unlimited exact unchanged" s' s
  | Error _ -> Alcotest.fail "unlimited exact tripped"

(* Any budget-limited solution is at most the optimum: a partial result
   stays a lower bound, never an overclaim. *)
let test_partial_bounded_by_exact () =
  let inst = tiny_instance () in
  let opt = Fsa_csr.Exact.solve_score inst in
  List.iter
    (fun probes ->
      let sol =
        Budget.value
          (Fsa_csr.Csr_improve.solve_budgeted (Budget.create ~probes ()) inst)
      in
      validate_ok "bounded partial" (fst sol);
      check_bool
        (Printf.sprintf "score under %d probes <= optimum" probes)
        true
        (score (fst sol) <= opt +. 1e-9))
    [ 0; 10; 100; 1_000 ]

(* ------------------------------------------------------------------ *)
(* Acceptance: a large sparse-tier instance under a tight wall budget
   terminates early with a typed, oracle-valid partial. *)

let test_sparse_wall_budget_partial () =
  let rng = Fsa_util.Rng.create 2024 in
  let inst =
    Fsa_csr.Instance.random_sparse rng ~regions:128 ~h_fragments:32
      ~m_fragments:32 ~inversion_rate:0.15 ~noise_pairs:64 ~noise_span:6
  in
  let budget = Budget.create ~wall_s:1e-5 () in
  match Fsa_csr.One_csr.four_approx_budgeted budget inst with
  | Ok _ -> Alcotest.fail "128r/32f solve finished inside 10us?"
  | Error (`Budget_exceeded (partial, reason)) ->
      check_bool "wall-clock reason" true (reason = `Wall_clock);
      validate_ok "sparse wall-budget partial" partial;
      check_bool "budget marked exceeded" true
        (Budget.exceeded budget = Some `Wall_clock)

(* The budget.exceeded counter stream surfaces trips in --stats. *)
let test_trip_counters () =
  let r = Registry.create () in
  Runtime.with_observation ~registry:r (fun () ->
      ignore
        (Fsa_csr.Greedy.solve_budgeted
           (Budget.create ~probes:0 ())
           (small_instance 1)));
  check_bool "budget.exceeded counted" true
    (Registry.counter_value r "budget.exceeded" = Some 1.0);
  check_bool "reason-tagged counter" true
    (Registry.counter_value r "budget.exceeded.probes" = Some 1.0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "budget"
    [
      ( "checkpoint",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "hooks tick when budget tripped" `Quick
            test_hooks_tick_when_budget_tripped;
          Alcotest.test_case "hook removes itself mid-tick" `Quick
            test_hook_removes_itself_mid_tick;
          Alcotest.test_case "hook registers hook mid-tick" `Quick
            test_hook_registers_hook_mid_tick;
          Alcotest.test_case "zero probes trips first check" `Quick
            test_zero_probe_budget_trips_first_check;
          Alcotest.test_case "unlimited never trips" `Quick
            test_unlimited_budget_never_trips;
          Alcotest.test_case "sticky re-trip without work" `Quick
            test_sticky_budget_re_trips_without_work;
          Alcotest.test_case "partial runs outside budget" `Quick
            test_partial_runs_outside_budget;
          Alcotest.test_case "nesting, innermost wins" `Quick
            test_budgets_nest_innermost_wins;
          Alcotest.test_case "value" `Quick test_value;
        ] );
      ( "solvers",
        [
          Alcotest.test_case "greedy" `Quick test_greedy_budgeted;
          Alcotest.test_case "four_approx" `Quick test_four_approx_budgeted;
          Alcotest.test_case "four_approx mid-run partial" `Quick
            test_four_approx_partial_mid_run;
          Alcotest.test_case "csr_improve" `Quick test_csr_improve_budgeted;
          Alcotest.test_case "full_improve" `Quick test_full_improve_budgeted;
          Alcotest.test_case "exact" `Quick test_exact_budgeted;
          Alcotest.test_case "partial bounded by exact" `Quick
            test_partial_bounded_by_exact;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "sparse 128r wall budget" `Quick
            test_sparse_wall_budget_partial;
          Alcotest.test_case "trip counters" `Quick test_trip_counters;
        ] );
    ]
