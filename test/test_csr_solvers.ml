(* Solver tests: exact ground truth, the greedy strawman, the ISP-based
   4-approximation (Cor 1), the Thm 3 doubling inequality, and the three
   local-search algorithms with their measured ratios. *)

open Fsa_seq
open Fsa_csr

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let qtest t = QCheck_alcotest.to_alcotest ~verbose:false t

let paper = Instance.paper_example

(* Small random instances where the exact solver is affordable. *)
let small_instance seed =
  let rng = Fsa_util.Rng.create seed in
  let planted = Fsa_util.Rng.bool rng in
  let h_fragments = 1 + Fsa_util.Rng.int rng 3 in
  let m_fragments = 1 + Fsa_util.Rng.int rng 3 in
  if planted then
    Instance.random_planted rng ~regions:6 ~h_fragments ~m_fragments
      ~inversion_rate:0.3 ~noise_pairs:4
  else
    Instance.random_uniform rng ~regions:6 ~h_fragments ~m_fragments ~density:0.25

let seed_gen = QCheck.(int_bound 1_000_000)

(* ------------------------------------------------------------------ *)
(* Exact                                                                *)

let test_exact_paper () =
  check_float "optimum 11" 11.0 (Exact.solve_score (paper ()))

let test_exact_layout_witness () =
  let inst = paper () in
  let opt, hl, ml = Exact.solve_exn inst in
  check_float "witness scores the optimum" opt (Conjecture.score_of_layouts inst hl ml)

let test_exact_scaling_covariance_qcheck =
  QCheck.Test.make ~name:"doubling σ doubles the optimum" ~count:20 seed_gen
    (fun seed ->
      let inst = small_instance seed in
      let doubled = Instance.with_sigma inst (Scoring.scale inst.Instance.sigma 2.0) in
      Float.abs ((2.0 *. Exact.solve_score inst) -. Exact.solve_score doubled) < 1e-6)

let test_exact_layout_count () =
  let inst = paper () in
  (* two fragments per side: (2! * 4)^2 = 64 *)
  check_int "layout count" 64 (Exact.layout_count inst)

let test_exact_budget () =
  let rng = Fsa_util.Rng.create 1 in
  let inst =
    Instance.random_planted rng ~regions:16 ~h_fragments:8 ~m_fragments:8
      ~inversion_rate:0.1 ~noise_pairs:0
  in
  (match Exact.solve ~budget:1000 inst with
  | Ok _ -> Alcotest.fail "oversized instance solved within budget"
  | Error (`Budget_exceeded n) ->
      check_int "reports the layout count" (Exact.layout_count inst) n);
  Alcotest.check_raises "solve_exn raises Invalid_argument"
    (Invalid_argument
       (Printf.sprintf
          "Exact.solve: layout budget exceeded (%d layout pairs; raise ?budget or shrink the instance)"
          (Exact.layout_count inst)))
    (fun () -> ignore (Exact.solve_exn ~budget:1000 inst));
  (* The counted fallback hook degrades instead of failing. *)
  check_float "fallback value" 42.0
    (Exact.solve_score_or ~budget:1000 ~fallback:(fun _ -> 42.0) inst);
  check_float "within budget: exact wins"
    (Exact.solve_score (Instance.paper_example ()))
    (Exact.solve_score_or ~fallback:(fun _ -> Float.nan) (Instance.paper_example ()))

(* ------------------------------------------------------------------ *)
(* Greedy                                                               *)

let test_greedy_feasible_qcheck =
  QCheck.Test.make ~name:"greedy solutions are consistent" ~count:60 seed_gen
    (fun seed ->
      let inst = small_instance seed in
      Result.is_ok (Solution.validate (Greedy.solve inst)))

let test_greedy_below_optimum_qcheck =
  QCheck.Test.make ~name:"greedy never exceeds the optimum" ~count:30 seed_gen
    (fun seed ->
      let inst = small_instance seed in
      Solution.score (Greedy.solve inst) <= Exact.solve_score inst +. 1e-6)

let test_greedy_positive_when_possible () =
  let inst = paper () in
  check_bool "greedy finds something" true (Solution.score (Greedy.solve inst) > 0.0)

let test_greedy_candidates_addable () =
  let inst = paper () in
  let sol = Solution.empty inst in
  List.iter
    (fun c ->
      check_bool "candidate addable" true (Result.is_ok (Solution.add sol c)))
    (Greedy.candidate_matches inst sol)

(* ------------------------------------------------------------------ *)
(* One_csr (Cor 1 / Thm 3)                                              *)

let test_four_approx_feasible_qcheck =
  QCheck.Test.make ~name:"4-approx solutions are consistent full-match stars"
    ~count:60 seed_gen (fun seed ->
      let inst = small_instance seed in
      let sol = One_csr.four_approx inst in
      Result.is_ok (Solution.validate sol)
      && List.for_all
           (fun m -> Cmatch.classify inst m = Some Cmatch.Full_match)
           (Solution.matches sol))

let test_four_approx_ratio_qcheck =
  QCheck.Test.make ~name:"Cor 1: TPA-based solver is within factor 4" ~count:30
    seed_gen (fun seed ->
      let inst = small_instance seed in
      let opt = Exact.solve_score inst in
      let sol = One_csr.four_approx inst in
      (4.0 *. Solution.score sol) +. 1e-6 >= opt)

let test_two_approx_with_exact_isp_qcheck =
  QCheck.Test.make ~name:"Thm 3: exact-ISP doubling is within factor 2" ~count:25
    seed_gen (fun seed ->
      let inst = small_instance seed in
      let opt = Exact.solve_score inst in
      let sol = One_csr.four_approx ~algorithm:One_csr.Exact_isp inst in
      (2.0 *. Solution.score sol) +. 1e-6 >= opt)

let test_doubling_inequality_qcheck =
  QCheck.Test.make ~name:"Thm 3 inequality: side optima sum to at least Opt"
    ~count:25 seed_gen (fun seed ->
      let inst = small_instance seed in
      let opt = Exact.solve_score inst in
      let a = Solution.score (One_csr.solve_side ~algorithm:One_csr.Exact_isp inst ~jobs_side:Species.H) in
      let b = Solution.score (One_csr.solve_side ~algorithm:One_csr.Exact_isp inst ~jobs_side:Species.M) in
      a +. b +. 1e-6 >= opt)

let test_isp_of_shape () =
  let inst = paper () in
  let isp = One_csr.isp_of inst ~jobs_side:Species.H in
  check_int "jobs = h fragments" 2 (Fsa_intervals.Isp.jobs isp);
  check_bool "candidates present" true (Fsa_intervals.Isp.size isp > 0)

(* ------------------------------------------------------------------ *)
(* Improvement framework                                                *)

let test_improve_run_terminates () =
  let inst = paper () in
  let sol, stats = Csr_improve.solve inst in
  check_bool "positive improvements" true (stats.Improve.improvements > 0);
  check_bool "rounds >= improvements" true (stats.Improve.rounds >= stats.Improve.improvements);
  check_bool "valid" true (Result.is_ok (Solution.validate sol))

let test_improve_max_improvements () =
  let inst = paper () in
  let _, stats =
    Improve.run ~max_improvements:1
      ~attempts:(fun _ -> Full_improve.attempts inst)
      ~init:(Solution.empty inst) ()
  in
  check_int "stops at cap" 1 stats.Improve.improvements

let test_tpa_fill_valid () =
  let inst = paper () in
  (* Fill the whole of m1 with H fragments. *)
  let sol =
    Improve.tpa_fill (Solution.empty inst) ~host:(Species.M, 0)
      ~zones:[ Site.make 0 1 ] ~exclude:[]
  in
  check_bool "valid" true (Result.is_ok (Solution.validate sol));
  check_bool "found the σ(a,s) or σ(d,t) plug" true (Solution.score sol > 0.0);
  List.iter
    (fun (m : Cmatch.t) -> check_int "fills target only" 0 m.Cmatch.m_frag)
    (Solution.matches sol)

let test_tpa_fill_respects_exclude () =
  let inst = paper () in
  let sol =
    Improve.tpa_fill (Solution.empty inst) ~host:(Species.M, 0)
      ~zones:[ Site.make 0 1 ] ~exclude:[ 0; 1 ]
  in
  check_int "nothing placed" 0 (Solution.size sol)

let test_rescore_roundtrip () =
  let inst = paper () in
  let sol, _ = Csr_improve.solve inst in
  let rescored = Improve.rescore inst sol in
  check_float "same σ, same score" (Solution.score sol) (Solution.score rescored)

let test_scaling_wrapper_close () =
  let inst = paper () in
  let scaled = Csr_improve.solve_scaled ~epsilon:0.05 inst in
  let unscaled, _ = Csr_improve.solve inst in
  check_bool "scaled within (1+eps) of unscaled" true
    (Solution.score scaled >= 0.9 *. Solution.score unscaled);
  check_bool "valid" true (Result.is_ok (Solution.validate scaled))

(* ------------------------------------------------------------------ *)
(* Full_improve (Thm 4)                                                 *)

let test_full_improve_full_matches_only_qcheck =
  QCheck.Test.make ~name:"Full_Improve emits only full matches" ~count:40 seed_gen
    (fun seed ->
      let inst = small_instance seed in
      let sol, _ = Full_improve.solve inst in
      Result.is_ok (Solution.validate sol)
      && List.for_all
           (fun m -> Cmatch.classify inst m = Some Cmatch.Full_match)
           (Solution.matches sol))

let test_full_improve_beats_third_of_full_opt_qcheck =
  (* The 4-approx solver emits full matches only, so its score lower-bounds
     the Full-CSR optimum; Full_Improve must reach at least a third of any
     full-match solution by Theorem 4. *)
  QCheck.Test.make ~name:"Thm 4: Full_Improve >= FullOpt/3 (vs 4-approx witness)"
    ~count:40 seed_gen (fun seed ->
      let inst = small_instance seed in
      let full, _ = Full_improve.solve inst in
      let witness = One_csr.four_approx ~algorithm:One_csr.Exact_isp inst in
      (3.0 *. Solution.score full) +. 1e-6 >= Solution.score witness)

let test_full_improve_paper () =
  let inst = paper () in
  let sol, _ = Full_improve.solve inst in
  (* The full-match optimum of the running example is 9. *)
  check_float "full optimum" 9.0 (Solution.score sol)

let test_lemma3_oracle_2approx_qcheck =
  (* Lemma 3's guarantee is relative to the full-match solution whose
     roles the oracle reports.  We take a strong full-match witness (the
     exact-ISP doubling solution), feed its roles to the two-TPA algorithm,
     and demand at least half the witness's score. *)
  QCheck.Test.make ~name:"Lemma 3: oracle roles give a Full-CSR 2-approx" ~count:60
    seed_gen (fun seed ->
      let inst = small_instance seed in
      let witness = One_csr.four_approx ~algorithm:One_csr.Exact_isp inst in
      let multiple = Full_improve.roles_of_solution witness in
      let sol = Full_improve.lemma3_2approx inst ~multiple in
      Result.is_ok (Solution.validate sol)
      && List.for_all
           (fun m -> Cmatch.classify inst m = Some Cmatch.Full_match)
           (Solution.matches sol)
      && (2.0 *. Solution.score sol) +. 1e-6 >= Solution.score witness)

let test_lemma3_on_paper () =
  let inst = paper () in
  let witness, _ = Full_improve.solve inst in
  (* witness is the Full-CSR optimum (9) here; its roles let the two-TPA
     algorithm reach at least 4.5. *)
  let multiple = Full_improve.roles_of_solution witness in
  let sol = Full_improve.lemma3_2approx inst ~multiple in
  check_bool "within the Lemma 3 bound" true
    ((2.0 *. Solution.score sol) +. 1e-6 >= Solution.score witness)

(* ------------------------------------------------------------------ *)
(* Border_improve (Thm 5 / Lemma 9)                                     *)

let test_border_improve_border_only_qcheck =
  QCheck.Test.make ~name:"Border_Improve emits only border matches, paths only"
    ~count:40 seed_gen (fun seed ->
      let inst = small_instance seed in
      let sol, _ = Border_improve.solve inst in
      Result.is_ok (Solution.validate sol)
      && List.for_all
           (fun m -> Cmatch.classify inst m = Some Cmatch.Border_match)
           (Solution.matches sol))

let test_border_improve_paper () =
  let inst = paper () in
  let sol, _ = Border_improve.solve inst in
  (* only the c~u border match is available (h2 is too short for borders) *)
  check_float "border optimum" 5.0 (Solution.score sol)

let test_matching_2approx_valid_qcheck =
  QCheck.Test.make ~name:"Lemma 9 matching baseline is consistent" ~count:40 seed_gen
    (fun seed ->
      let inst = small_instance seed in
      Result.is_ok (Solution.validate (Border_improve.matching_2approx inst)))

let test_border_candidates_positive () =
  let inst = paper () in
  let cands = Border_improve.border_candidates inst in
  check_bool "candidates exist" true (cands <> []);
  List.iter (fun (c : Cmatch.t) -> check_bool "positive" true (c.Cmatch.score > 0.0)) cands

(* ------------------------------------------------------------------ *)
(* Csr_improve (Thm 6)                                                  *)

let test_csr_improve_paper_optimal () =
  let inst = paper () in
  let sol, _ = Csr_improve.solve inst in
  check_float "reaches the optimum 11" 11.0 (Solution.score sol)

let test_csr_improve_valid_qcheck =
  QCheck.Test.make ~name:"CSR_Improve solutions are consistent" ~count:40 seed_gen
    (fun seed ->
      let inst = small_instance seed in
      Result.is_ok (Solution.validate (fst (Csr_improve.solve inst))))

let test_csr_improve_ratio3_qcheck =
  QCheck.Test.make ~name:"Thm 6: CSR_Improve is within factor 3 of the optimum"
    ~count:30 seed_gen (fun seed ->
      let inst = small_instance seed in
      let opt = Exact.solve_score inst in
      let sol, _ = Csr_improve.solve inst in
      (3.0 *. Solution.score sol) +. 1e-6 >= opt)

let test_csr_improve_all_containing_at_least_extremes_qcheck =
  QCheck.Test.make ~name:"exhaustive container mode never loses to extremes"
    ~count:10 seed_gen (fun seed ->
      let inst = small_instance seed in
      let extremes, _ = Csr_improve.solve inst in
      let exhaustive, _ =
        Csr_improve.solve
          ~config:{ Csr_improve.default_config with site_mode = `All_containing }
          inst
      in
      (* Local optima are not totally ordered, but the exhaustive attempt
         space must at least match the 3-approx bound whenever extremes does;
         here we just require both stay consistent and positive together. *)
      Result.is_ok (Solution.validate exhaustive)
      && (Solution.score extremes > 0.0) = (Solution.score exhaustive > 0.0))

let test_solve_best_dominates_components () =
  let inst = paper () in
  let best = Csr_improve.solve_best inst in
  check_bool "at least the 4-approx" true
    (Solution.score best >= Solution.score (One_csr.four_approx inst));
  check_bool "at least matching" true
    (Solution.score best >= Solution.score (Border_improve.matching_2approx inst))

(* ------------------------------------------------------------------ *)
(* Adversarial family (E8)                                              *)

let test_trap_greedy_score () =
  let inst = Adversarial.trap ~k:3 ~width:2 () in
  let g = Greedy.solve inst in
  check_float "greedy takes the baits" (Adversarial.trap_greedy_score ~w:10.0 ~delta:1.0 ~k:3 ~width:2)
    (Solution.score g)

let test_trap_csr_improve_escapes () =
  let inst = Adversarial.trap ~k:2 ~width:3 () in
  let sol, _ = Csr_improve.solve inst in
  check_float "reaches planted optimum"
    (Adversarial.trap_optimum ~w:10.0 ~k:2 ~width:3)
    (Solution.score sol)

let test_trap_ratio_grows_with_width () =
  let ratio width =
    let inst = Adversarial.trap ~k:1 ~width () in
    let g = Solution.score (Greedy.solve inst) in
    Adversarial.trap_optimum ~w:10.0 ~k:1 ~width /. g
  in
  check_bool "width 1" true (ratio 1 > 1.7);
  check_bool "width 4 is worse" true (ratio 4 > ratio 2);
  check_bool "unbounded trend" true (ratio 4 > 6.0)

let test_trap_four_approx_bound () =
  let inst = Adversarial.trap ~k:2 ~width:4 () in
  let sol = One_csr.four_approx inst in
  let opt = Adversarial.trap_optimum ~w:10.0 ~k:2 ~width:4 in
  check_bool "4-approx honors its bound on traps" true
    ((4.0 *. Solution.score sol) +. 1e-6 >= opt)

let test_trap_invalid_params () =
  check_bool "delta >= w rejected" true
    (try
       ignore (Adversarial.trap ~w:1.0 ~delta:2.0 ~k:1 ~width:1 ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "fsa_csr_solvers"
    [
      ( "exact",
        [
          Alcotest.test_case "paper optimum" `Quick test_exact_paper;
          Alcotest.test_case "layout witness" `Quick test_exact_layout_witness;
          qtest test_exact_scaling_covariance_qcheck;
          Alcotest.test_case "layout count" `Quick test_exact_layout_count;
          Alcotest.test_case "budget" `Quick test_exact_budget;
        ] );
      ( "greedy",
        [
          qtest test_greedy_feasible_qcheck;
          qtest test_greedy_below_optimum_qcheck;
          Alcotest.test_case "finds something" `Quick test_greedy_positive_when_possible;
          Alcotest.test_case "candidates addable" `Quick test_greedy_candidates_addable;
        ] );
      ( "one_csr",
        [
          qtest test_four_approx_feasible_qcheck;
          qtest test_four_approx_ratio_qcheck;
          qtest test_two_approx_with_exact_isp_qcheck;
          qtest test_doubling_inequality_qcheck;
          Alcotest.test_case "isp shape" `Quick test_isp_of_shape;
        ] );
      ( "improve",
        [
          Alcotest.test_case "terminates with stats" `Quick test_improve_run_terminates;
          Alcotest.test_case "improvement cap" `Quick test_improve_max_improvements;
          Alcotest.test_case "tpa_fill valid" `Quick test_tpa_fill_valid;
          Alcotest.test_case "tpa_fill exclusion" `Quick test_tpa_fill_respects_exclude;
          Alcotest.test_case "rescore" `Quick test_rescore_roundtrip;
          Alcotest.test_case "scaling wrapper" `Quick test_scaling_wrapper_close;
        ] );
      ( "full_improve",
        [
          qtest test_full_improve_full_matches_only_qcheck;
          qtest test_full_improve_beats_third_of_full_opt_qcheck;
          Alcotest.test_case "paper full optimum" `Quick test_full_improve_paper;
          qtest test_lemma3_oracle_2approx_qcheck;
          Alcotest.test_case "Lemma 3 on the paper example" `Quick test_lemma3_on_paper;
        ] );
      ( "border_improve",
        [
          qtest test_border_improve_border_only_qcheck;
          Alcotest.test_case "paper border optimum" `Quick test_border_improve_paper;
          qtest test_matching_2approx_valid_qcheck;
          Alcotest.test_case "candidates positive" `Quick test_border_candidates_positive;
        ] );
      ( "csr_improve",
        [
          Alcotest.test_case "paper optimal" `Quick test_csr_improve_paper_optimal;
          qtest test_csr_improve_valid_qcheck;
          qtest test_csr_improve_ratio3_qcheck;
          qtest test_csr_improve_all_containing_at_least_extremes_qcheck;
          Alcotest.test_case "solve_best dominates" `Quick test_solve_best_dominates_components;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "greedy trapped" `Quick test_trap_greedy_score;
          Alcotest.test_case "csr_improve escapes" `Quick test_trap_csr_improve_escapes;
          Alcotest.test_case "ratio grows" `Quick test_trap_ratio_grows_with_width;
          Alcotest.test_case "4-approx bound" `Quick test_trap_four_approx_bound;
          Alcotest.test_case "invalid params" `Quick test_trap_invalid_params;
        ] );
    ]
